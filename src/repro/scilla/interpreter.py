"""Definitional interpreter for Scilla contracts.

Transitions execute against a :class:`ContractState` under a
:class:`TxContext` with gas metering.  The interpreter mutates the
state in place, recording an undo log; if the transition aborts
(``throw``, failed builtin, out of gas) the state is rolled back and
the failure reported in the :class:`TransitionResult`.

This mirrors the role of Zilliqa's scilla-runner in the paper's
evaluation: it is the substrate whose sequential execution cost the
sharded chain parallelises.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from . import ast
from . import types as ty
from .ast import (
    Accept, App, Atom, Bind, BinderPat, Builtin, CallProc, Constr, ConstructorPat, Event, Expr, Fun, Ident, Let,
    LibTypeDef, LitAtom, Literal, Load, MapDelete, MapGet,
    MapGetExists, MapUpdate, MatchExpr, MatchStmt, MessageExpr, Module,
    Pattern, ReadBlockchain, Send, Stmt, Store, TApp, TFun, Throw, Var,
    WildcardPat,
)
from .builtins import get_builtin
from .errors import EvalError, ExecError, GasError, ScillaError
from .parser import parse_module
from .state import MISSING, ContractState, WriteLog, _Missing
from .types import (
    ADTDef, BUILTIN_ADTS, ConstructorDef, MapType, PrimType,
    ScillaType, substitute,
)
from .values import (
    ADTVal, BNumVal, ByStrVal, Closure, Env, IntVal, MapVal, MsgVal,
    StringVal, TypeClosure, Value, bool_val, none, some, value_to_list,
)

# --------------------------------------------------------------------------
# Gas schedule (simplified from the Zilliqa cost model; absolute values
# matter only relative to each other for the throughput experiments).
# --------------------------------------------------------------------------

GAS_TRANSITION_BASE = 10
GAS_STATEMENT = 1
GAS_STATE_ACCESS = 4
GAS_SEND_PER_MSG = 8
GAS_EVENT = 4


@dataclass(frozen=True)
class OutMsg:
    """An outgoing message emitted by ``send``."""

    tag: str
    recipient: str
    amount: int
    params: tuple[tuple[str, Value], ...] = ()


@dataclass
class TxContext:
    """Blockchain-provided context for one transition invocation."""

    sender: str
    amount: int = 0
    origin: str | None = None
    block_number: int = 1
    timestamp: int = 0
    chain_id: int = 1

    def __post_init__(self) -> None:
        if self.origin is None:
            self.origin = self.sender


@dataclass
class TransitionResult:
    success: bool
    gas_used: int
    accepted: int = 0
    messages: list[OutMsg] = dc_field(default_factory=list)
    events: list[MsgVal] = dc_field(default_factory=list)
    error: str | None = None
    write_log: WriteLog | None = None


# --------------------------------------------------------------------------
# Native (Python-implemented) polymorphic library functions.
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class NativeFun(Value):
    """A curried native library function (list folds etc.).

    Scilla has no general recursion; list/nat traversals come from the
    standard library's recursion principles.  We model those as native
    values.  Type applications are recorded (they pick result element
    types) and positional arguments accumulate until saturation.
    """

    name: str
    arity: int
    targs: tuple[ScillaType, ...] = ()
    args: tuple[Value, ...] = ()

    def __str__(self) -> str:
        return f"<native {self.name}>"


NATIVE_ARITIES = {
    "list_foldl": 3,   # @list_foldl 'A 'B : ('B -> 'A -> 'B) -> 'B -> List 'A -> 'B
    "list_foldr": 3,
    "list_map": 2,
    "list_filter": 2,
    "list_length": 1,
    "list_mem": 2,     # eq-based membership: elem -> list -> Bool
    "list_append": 2,
    "list_reverse": 1,
    "nat_fold": 3,     # (B -> Nat -> B) -> B -> Nat -> B
    "fst": 1,
    "snd": 1,
}


def native_env() -> Env:
    env = Env()
    for name, arity in NATIVE_ARITIES.items():
        env = env.bind(name, NativeFun(name, arity))
    return env


# --------------------------------------------------------------------------
# Type substitution inside expressions (for tfun application).
# --------------------------------------------------------------------------

def subst_expr_types(expr: Expr, subst: dict[str, ScillaType]) -> Expr:
    """Substitute type variables throughout an expression."""
    def st(t: ScillaType | None) -> ScillaType | None:
        return substitute(t, subst) if t is not None else None

    def satom(a: Atom) -> Atom:
        if isinstance(a, LitAtom):
            return LitAtom(a.value, substitute(a.typ, subst), a.loc)
        return a

    if isinstance(expr, Literal):
        return Literal(expr.value, substitute(expr.typ, subst), expr.loc)
    if isinstance(expr, Var):
        return expr
    if isinstance(expr, MessageExpr):
        return MessageExpr(
            tuple((k, satom(v)) for k, v in expr.fields), expr.loc)
    if isinstance(expr, Constr):
        return Constr(
            expr.constructor,
            tuple(substitute(t, subst) for t in expr.type_args),
            tuple(satom(a) for a in expr.args), expr.loc)
    if isinstance(expr, Builtin):
        return Builtin(expr.name, tuple(satom(a) for a in expr.args), expr.loc)
    if isinstance(expr, Let):
        return Let(expr.name, st(expr.annot),
                   subst_expr_types(expr.bound, subst),
                   subst_expr_types(expr.body, subst), expr.loc)
    if isinstance(expr, Fun):
        return Fun(expr.param, substitute(expr.param_type, subst),
                   subst_expr_types(expr.body, subst), expr.loc)
    if isinstance(expr, App):
        return App(expr.func, tuple(satom(a) for a in expr.args), expr.loc)
    if isinstance(expr, MatchExpr):
        return MatchExpr(
            expr.scrutinee,
            tuple((p, subst_expr_types(e, subst)) for p, e in expr.clauses),
            expr.loc)
    if isinstance(expr, TFun):
        inner = {k: v for k, v in subst.items() if k != expr.tvar}
        return TFun(expr.tvar, subst_expr_types(expr.body, inner), expr.loc)
    if isinstance(expr, TApp):
        return TApp(expr.func,
                    tuple(substitute(t, subst) for t in expr.type_args),
                    expr.loc)
    raise EvalError(f"unknown expression node {expr!r}")


# --------------------------------------------------------------------------
# ADT registry.
# --------------------------------------------------------------------------

class ADTRegistry:
    """All ADTs in scope: built-ins plus user library type definitions."""

    def __init__(self) -> None:
        self.adts: dict[str, ADTDef] = dict(BUILTIN_ADTS)
        self.by_constructor: dict[str, ADTDef] = {}
        for adt in self.adts.values():
            for c in adt.constructors:
                self.by_constructor[c.name] = adt

    def define(self, typedef: LibTypeDef) -> None:
        constructors = tuple(
            ConstructorDef(name, args) for name, args in typedef.constructors
        )
        adt = ADTDef(typedef.name, (), constructors)
        self.adts[typedef.name] = adt
        for c in constructors:
            self.by_constructor[c.name] = adt

    def lookup_constructor(self, name: str) -> tuple[ADTDef, ConstructorDef]:
        if name not in self.by_constructor:
            raise EvalError(f"unknown constructor {name!r}")
        adt = self.by_constructor[name]
        return adt, adt.constructor(name)


# --------------------------------------------------------------------------
# Pattern matching.
# --------------------------------------------------------------------------

def match_pattern(pat: Pattern, value: Value) -> list[tuple[str, Value]] | None:
    """Try to match; returns bindings or None."""
    if isinstance(pat, WildcardPat):
        return []
    if isinstance(pat, BinderPat):
        return [(pat.name, value)]
    if isinstance(pat, ConstructorPat):
        if not isinstance(value, ADTVal) or value.constructor != pat.constructor:
            return None
        if len(pat.args) not in (0, len(value.args)):
            return None
        bindings: list[tuple[str, Value]] = []
        for sub, arg in zip(pat.args, value.args):
            inner = match_pattern(sub, arg)
            if inner is None:
                return None
            bindings.extend(inner)
        return bindings
    raise EvalError(f"unknown pattern {pat!r}")


# --------------------------------------------------------------------------
# The interpreter proper.
# --------------------------------------------------------------------------

class Interpreter:
    """Evaluator for one contract module."""

    def __init__(self, module: Module):
        self.module = module
        self.contract = module.contract
        self.adts = ADTRegistry()
        # Gas hook installed by _Run while a transition executes, so
        # builtin applications inside pure expressions are metered too.
        self._charge = None
        self.lib_env = self._build_library_env()

    # -- setup ----------------------------------------------------------------

    def _build_library_env(self) -> Env:
        env = native_env()
        for lib in (_prelude().library, self.module.library):
            if lib is None:
                continue
            for entry in lib.entries:
                if isinstance(entry, LibTypeDef):
                    self.adts.define(entry)
                else:
                    env = env.bind(entry.name, self.eval_expr(entry.expr, env))
        return env

    def deploy(self, address: str, params: dict[str, Value],
               balance: int = 0) -> ContractState:
        """Instantiate contract state from immutable parameters."""
        expected = {p.name for p in self.contract.params}
        given = set(params)
        if expected != given:
            raise ExecError(
                f"contract parameter mismatch: expected {sorted(expected)}, "
                f"got {sorted(given)}")
        env = self.lib_env
        immutables = dict(params)
        immutables.setdefault("_this_address", ByStrVal(_pad_addr(address), ty.BYSTR20))
        for name, value in immutables.items():
            env = env.bind(name, value)
        fields: dict[str, Value] = {}
        field_types: dict[str, ScillaType] = {}
        for fld in self.contract.fields:
            fields[fld.name] = self.eval_expr(fld.init, env)
            field_types[fld.name] = fld.typ
        return ContractState(address, fields, field_types, immutables, balance)

    # -- expression evaluation ---------------------------------------------------

    def eval_atom(self, atom: Atom, env: Env) -> Value:
        if isinstance(atom, Ident):
            value = env.lookup(atom.name)
            if value is None:
                raise EvalError(f"unbound identifier {atom.name!r}", atom.loc)
            return value
        return self._literal_value(atom.value, atom.typ)

    def _literal_value(self, raw: object, typ: ScillaType) -> Value:
        if isinstance(typ, PrimType):
            if ty.is_int_type(typ):
                assert isinstance(raw, int)
                return IntVal(raw, typ)
            if typ.name == "String":
                assert isinstance(raw, str)
                return StringVal(raw)
            if typ.name.startswith("ByStr"):
                assert isinstance(raw, str)
                return ByStrVal(raw, typ)
            if typ.name == "BNum":
                assert isinstance(raw, int)
                return BNumVal(raw)
        if isinstance(typ, MapType):
            return MapVal(typ.key, typ.value)
        raise EvalError(f"cannot build literal of type {typ}")

    def eval_expr(self, expr: Expr, env: Env) -> Value:
        if isinstance(expr, Literal):
            return self._literal_value(expr.value, expr.typ)
        if isinstance(expr, Var):
            value = env.lookup(expr.name)
            if value is None:
                raise EvalError(f"unbound identifier {expr.name!r}", expr.loc)
            return value
        if isinstance(expr, MessageExpr):
            return MsgVal(tuple(
                (name, self.eval_atom(atom, env)) for name, atom in expr.fields))
        if isinstance(expr, Constr):
            return self._eval_constr(expr, env)
        if isinstance(expr, Builtin):
            defn = get_builtin(expr.name)
            args = [self.eval_atom(a, env) for a in expr.args]
            if len(args) != defn.arity:
                raise EvalError(
                    f"builtin {expr.name} expects {defn.arity} args, got "
                    f"{len(args)}", expr.loc)
            if self._charge is not None:
                self._charge(defn.gas)
            return defn.impl(args)
        if isinstance(expr, Let):
            bound = self.eval_expr(expr.bound, env)
            return self.eval_expr(expr.body, env.bind(expr.name, bound))
        if isinstance(expr, Fun):
            return Closure(expr.param, expr.param_type, expr.body, env)
        if isinstance(expr, App):
            func = env.lookup(expr.func.name)
            if func is None:
                raise EvalError(f"unbound function {expr.func.name!r}", expr.loc)
            for atom in expr.args:
                func = self.apply(func, self.eval_atom(atom, env), expr.loc)
            return func
        if isinstance(expr, MatchExpr):
            scrutinee = self.eval_atom(expr.scrutinee, env)
            for pat, body in expr.clauses:
                bindings = match_pattern(pat, scrutinee)
                if bindings is not None:
                    return self.eval_expr(body, env.bind_many(bindings))
            raise EvalError(f"match failure on {scrutinee}", expr.loc)
        if isinstance(expr, TFun):
            return TypeClosure(expr.tvar, expr.body, env)
        if isinstance(expr, TApp):
            func = env.lookup(expr.func.name)
            if func is None:
                raise EvalError(f"unbound identifier {expr.func.name!r}", expr.loc)
            for targ in expr.type_args:
                func = self.type_apply(func, targ, expr.loc)
            return func
        raise EvalError(f"unknown expression node {expr!r}")

    def _eval_constr(self, expr: Constr, env: Env) -> Value:
        adt, cdef = self.adts.lookup_constructor(expr.constructor)
        args = tuple(self.eval_atom(a, env) for a in expr.args)
        if len(args) != len(cdef.arg_types):
            raise EvalError(
                f"constructor {expr.constructor} expects "
                f"{len(cdef.arg_types)} args, got {len(args)}", expr.loc)
        return ADTVal(adt.name, expr.constructor, expr.type_args, args)

    def apply(self, func: Value, arg: Value, loc: ast.Loc) -> Value:
        if isinstance(func, Closure):
            return self.eval_expr(func.body, func.env.bind(func.param, arg))
        if isinstance(func, NativeFun):
            collected = func.args + (arg,)
            if len(collected) < func.arity:
                return NativeFun(func.name, func.arity, func.targs, collected)
            return self._run_native(func.name, func.targs, collected, loc)
        raise EvalError(f"cannot apply non-function {func}", loc)

    def type_apply(self, func: Value, targ: ScillaType, loc: ast.Loc) -> Value:
        if isinstance(func, TypeClosure):
            body = subst_expr_types(func.body, {func.tvar: targ})
            return self.eval_expr(body, func.env)
        if isinstance(func, NativeFun):
            return NativeFun(func.name, func.arity, func.targs + (targ,), func.args)
        raise EvalError(f"cannot instantiate non-type-function {func}", loc)

    def _run_native(self, name: str, targs: tuple[ScillaType, ...],
                    args: tuple[Value, ...], loc: ast.Loc) -> Value:
        elem_t = targs[0] if targs else ty.TypeVar("'A")
        if name == "list_foldl":
            f, acc, lst = args
            for item in value_to_list(lst):
                acc = self.apply(self.apply(f, acc, loc), item, loc)
            return acc
        if name == "list_foldr":
            f, acc, lst = args
            for item in reversed(value_to_list(lst)):
                acc = self.apply(self.apply(f, item, loc), acc, loc)
            return acc
        if name == "list_map":
            f, lst = args
            items = [self.apply(f, item, loc) for item in value_to_list(lst)]
            out_t = targs[1] if len(targs) > 1 else elem_t
            out: Value = ADTVal("List", "Nil", (out_t,))
            for item in reversed(items):
                out = ADTVal("List", "Cons", (out_t,), (item, out))
            return out
        if name == "list_filter":
            f, lst = args
            items = [item for item in value_to_list(lst)
                     if self.apply(f, item, loc) == bool_val(True)]
            out = ADTVal("List", "Nil", (elem_t,))
            for item in reversed(items):
                out = ADTVal("List", "Cons", (elem_t,), (item, out))
            return out
        if name == "list_length":
            (lst,) = args
            return IntVal(len(value_to_list(lst)), ty.UINT32)
        if name == "list_mem":
            needle, lst = args
            found = any(item == needle for item in value_to_list(lst))
            return bool_val(found)
        if name == "list_append":
            a, b = args
            items = value_to_list(a)
            out = b
            for item in reversed(items):
                out = ADTVal("List", "Cons", (elem_t,), (item, out))
            return out
        if name == "list_reverse":
            (lst,) = args
            out = ADTVal("List", "Nil", (elem_t,))
            for item in value_to_list(lst):
                out = ADTVal("List", "Cons", (elem_t,), (item, out))
            return out
        if name == "nat_fold":
            f, acc, nat = args
            count = 0
            v = nat
            while isinstance(v, ADTVal) and v.constructor == "Succ":
                count += 1
                v = v.args[0]
            for _ in range(count):
                acc = self.apply(f, acc, loc)
            return acc
        if name == "fst":
            (p,) = args
            if isinstance(p, ADTVal) and p.constructor == "Pair":
                return p.args[0]
            raise EvalError("fst expects a pair", loc)
        if name == "snd":
            (p,) = args
            if isinstance(p, ADTVal) and p.constructor == "Pair":
                return p.args[1]
            raise EvalError("snd expects a pair", loc)
        raise EvalError(f"unknown native function {name}", loc)

    # -- transition execution -------------------------------------------------------

    def run_transition(self, state: ContractState, name: str,
                       args: dict[str, Value], ctx: TxContext,
                       gas_limit: int = 100_000) -> TransitionResult:
        """Execute a transition; rolls state back on failure."""
        try:
            component = self.contract.component(name)
        except KeyError as exc:
            raise ExecError(str(exc)) from exc
        if not component.is_transition:
            raise ExecError(f"{name} is a procedure, not a transition")
        expected = {p.name for p in component.params}
        if expected != set(args):
            raise ExecError(
                f"transition {name} parameter mismatch: expected "
                f"{sorted(expected)}, got {sorted(args)}")

        run = _Run(self, state, ctx, gas_limit)
        env = self.lib_env
        for pname, pvalue in state.immutables.items():
            env = env.bind(pname, pvalue)
        env = env.bind("_sender", ByStrVal(_pad_addr(ctx.sender), ty.BYSTR20))
        env = env.bind("_origin", ByStrVal(_pad_addr(ctx.origin or ctx.sender), ty.BYSTR20))
        env = env.bind("_amount", IntVal(ctx.amount, ty.UINT128))
        self._charge = run.charge
        try:
            run.charge(GAS_TRANSITION_BASE)
            for pname, pvalue in args.items():
                env = env.bind(pname, pvalue)
            run.exec_stmts(component.body, env)
        except ScillaError as exc:
            run.log.rollback(state)
            return TransitionResult(
                success=False, gas_used=run.gas_used, error=str(exc))
        finally:
            self._charge = None
        state.balance += run.accepted
        return TransitionResult(
            success=True, gas_used=run.gas_used, accepted=run.accepted,
            messages=run.messages, events=run.events, write_log=run.log)


def _pad_addr(address: str) -> str:
    body = address[2:] if address.startswith("0x") else address
    return "0x" + body.rjust(40, "0").lower()


class _Run:
    """Mutable per-invocation execution context."""

    def __init__(self, interp: Interpreter, state: ContractState,
                 ctx: TxContext, gas_limit: int):
        self.interp = interp
        self.state = state
        self.ctx = ctx
        self.gas_limit = gas_limit
        self.gas_used = 0
        self.accepted = 0
        self.messages: list[OutMsg] = []
        self.events: list[MsgVal] = []
        self.log = WriteLog()

    def charge(self, amount: int) -> None:
        self.gas_used += amount
        if self.gas_used > self.gas_limit:
            raise GasError(f"out of gas (limit {self.gas_limit})")

    # -- statement execution ---------------------------------------------------

    def exec_stmts(self, stmts: tuple[Stmt, ...], env: Env) -> Env:
        for stmt in stmts:
            env = self.exec_stmt(stmt, env)
        return env

    def exec_stmt(self, stmt: Stmt, env: Env) -> Env:
        self.charge(GAS_STATEMENT)
        interp = self.interp
        if isinstance(stmt, Bind):
            value = interp.eval_expr(stmt.expr, env)
            return env.bind(stmt.lhs, value)
        if isinstance(stmt, Load):
            self.charge(GAS_STATE_ACCESS)
            value = self.state.get_field(stmt.field)
            if isinstance(value, MapVal):
                value = value.copy()
            return env.bind(stmt.lhs, value)
        if isinstance(stmt, Store):
            self.charge(GAS_STATE_ACCESS)
            value = interp.eval_atom(stmt.rhs, env)
            self.log.record(self.state, (stmt.field, ()), value)
            self.state.write((stmt.field, ()), value)
            return env
        if isinstance(stmt, MapGet):
            self.charge(GAS_STATE_ACCESS)
            keys = tuple(interp.eval_atom(k, env) for k in stmt.keys)
            raw = self.state.map_get(stmt.map, keys)
            value_t = _map_leaf_type(self.state.field_types.get(stmt.map), len(keys))
            if isinstance(raw, _Missing):
                return env.bind(stmt.lhs, none(value_t))
            if isinstance(raw, MapVal):
                raw = raw.copy()
            return env.bind(stmt.lhs, some(raw, value_t))
        if isinstance(stmt, MapGetExists):
            self.charge(GAS_STATE_ACCESS)
            keys = tuple(interp.eval_atom(k, env) for k in stmt.keys)
            raw = self.state.map_get(stmt.map, keys)
            return env.bind(stmt.lhs, bool_val(not isinstance(raw, _Missing)))
        if isinstance(stmt, MapUpdate):
            self.charge(GAS_STATE_ACCESS)
            keys = tuple(interp.eval_atom(k, env) for k in stmt.keys)
            value = interp.eval_atom(stmt.rhs, env)
            self.log.record(self.state, (stmt.map, keys), value)
            self.state.map_put(stmt.map, keys, value)
            return env
        if isinstance(stmt, MapDelete):
            self.charge(GAS_STATE_ACCESS)
            keys = tuple(interp.eval_atom(k, env) for k in stmt.keys)
            self.log.record(self.state, (stmt.map, keys), MISSING)
            self.state.map_delete(stmt.map, keys)
            return env
        if isinstance(stmt, ReadBlockchain):
            value: Value
            if stmt.entry == "BLOCKNUMBER":
                value = BNumVal(self.ctx.block_number)
            elif stmt.entry == "TIMESTAMP":
                value = IntVal(self.ctx.timestamp, ty.UINT64)
            else:  # CHAINID
                value = IntVal(self.ctx.chain_id, ty.UINT32)
            return env.bind(stmt.lhs, value)
        if isinstance(stmt, MatchStmt):
            scrutinee = interp.eval_atom(stmt.scrutinee, env)
            for pat, body in stmt.clauses:
                bindings = match_pattern(pat, scrutinee)
                if bindings is not None:
                    self.exec_stmts(body, env.bind_many(bindings))
                    return env
            raise ExecError(f"match failure on {scrutinee}", stmt.loc)
        if isinstance(stmt, Accept):
            if self.accepted == 0:
                self.accepted = self.ctx.amount
            return env
        if isinstance(stmt, Send):
            value = interp.eval_atom(stmt.arg, env)
            msgs = value_to_list(value) if isinstance(value, ADTVal) else [value]
            for msg in msgs:
                self.charge(GAS_SEND_PER_MSG)
                self.messages.append(_to_outmsg(msg, stmt.loc))
            return env
        if isinstance(stmt, Event):
            self.charge(GAS_EVENT)
            value = interp.eval_atom(stmt.arg, env)
            if not isinstance(value, MsgVal):
                raise ExecError("event expects a message value", stmt.loc)
            self.events.append(value)
            return env
        if isinstance(stmt, Throw):
            if stmt.arg is not None:
                value = interp.eval_atom(stmt.arg, env)
                raise ExecError(f"exception thrown: {value}", stmt.loc)
            raise ExecError("exception thrown", stmt.loc)
        if isinstance(stmt, CallProc):
            return self._call_procedure(stmt, env)
        raise ExecError(f"unknown statement {stmt!r}", stmt.loc)

    def _call_procedure(self, stmt: CallProc, env: Env) -> Env:
        interp = self.interp
        try:
            proc = interp.contract.component(stmt.proc)
        except KeyError as exc:
            raise ExecError(str(exc), stmt.loc) from exc
        if proc.is_transition:
            raise ExecError(f"cannot call transition {stmt.proc} as procedure",
                            stmt.loc)
        if len(stmt.args) != len(proc.params):
            raise ExecError(
                f"procedure {stmt.proc} expects {len(proc.params)} args, got "
                f"{len(stmt.args)}", stmt.loc)
        values = [interp.eval_atom(a, env) for a in stmt.args]
        # Procedures see library/contract/implicit bindings plus their own
        # params, not the caller's locals.
        penv = env
        pairs = [(p.name, v) for p, v in zip(proc.params, values)]
        penv = penv.bind_many(pairs)
        self.exec_stmts(proc.body, penv)
        return env


def _map_leaf_type(field_type: ScillaType | None, depth: int) -> ScillaType:
    t = field_type
    for _ in range(depth):
        if isinstance(t, MapType):
            t = t.value
        else:
            return ty.TypeVar("'V")
    return t if t is not None else ty.TypeVar("'V")


def _to_outmsg(msg: Value, loc: ast.Loc) -> OutMsg:
    if not isinstance(msg, MsgVal):
        raise ExecError("send expects messages", loc)
    tag = msg.get("_tag")
    recipient = msg.get("_recipient")
    amount = msg.get("_amount")
    if not isinstance(tag, StringVal) or not isinstance(recipient, ByStrVal):
        raise ExecError("message needs _tag and _recipient", loc)
    amt = amount.value if isinstance(amount, IntVal) else 0
    params = tuple(
        (k, v) for k, v in msg.fields
        if k not in ("_tag", "_recipient", "_amount"))
    return OutMsg(tag.value, recipient.hex, amt, params)


# --------------------------------------------------------------------------
# Prelude: Scilla-source standard helpers available to every contract.
# --------------------------------------------------------------------------

PRELUDE_SOURCE = """
scilla_version 0

library Prelude

let one_msg = fun (msg: Message) =>
  let nil_msg = Nil {Message} in
  Cons {Message} msg nil_msg

let two_msgs = fun (m1: Message) => fun (m2: Message) =>
  let nil_msg = Nil {Message} in
  let one = Cons {Message} m2 nil_msg in
  Cons {Message} m1 one

let andb = fun (a: Bool) => fun (b: Bool) =>
  match a with
  | True => b
  | False => False
  end

let orb = fun (a: Bool) => fun (b: Bool) =>
  match a with
  | True => True
  | False => b
  end

let negb = fun (a: Bool) =>
  match a with
  | True => False
  | False => True
  end

let option_uint128 = fun (default: Uint128) => fun (opt: Option Uint128) =>
  match opt with
  | Some v => v
  | None => default
  end

let option_is_some = tfun 'A =>
  fun (opt: Option 'A) =>
  match opt with
  | Some v => True
  | None => False
  end

contract Prelude
transition Noop ()
end
"""

_PRELUDE_MODULE: Module | None = None


def _prelude() -> Module:
    global _PRELUDE_MODULE
    if _PRELUDE_MODULE is None:
        _PRELUDE_MODULE = parse_module(PRELUDE_SOURCE, "<prelude>")
    return _PRELUDE_MODULE
