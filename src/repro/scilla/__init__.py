"""Scilla language frontend: lexer, parser, typechecker, interpreter.

This subpackage implements the substrate language of the CoSplit paper
(Sergey et al., OOPSLA 2019): a minimalistic, memory- and type-safe
functional smart-contract language with message-passing semantics.
"""

from .ast import Contract, Component, Module
from .errors import (
    EvalError, ExecError, GasError, LexError, OutOfBoundsError,
    ParseError, ScillaError, TypeError_,
)
from .interpreter import Interpreter, OutMsg, TransitionResult, TxContext
from .parser import parse_expression, parse_module, parse_type_str
from .state import MISSING, ContractState

__all__ = [
    "Contract", "Component", "Module",
    "EvalError", "ExecError", "GasError", "LexError", "OutOfBoundsError",
    "ParseError", "ScillaError", "TypeError_",
    "Interpreter", "OutMsg", "TransitionResult", "TxContext",
    "parse_expression", "parse_module", "parse_type_str",
    "MISSING", "ContractState",
]
