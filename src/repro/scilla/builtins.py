"""Built-in operations of the Scilla standard execution environment.

Each builtin has an implementation over runtime values and a typing
rule used by the typechecker.  Arithmetic is checked: results that do
not fit the operand type raise :class:`OutOfBoundsError`, matching
Scilla's safe-by-default integers (this is what makes `sub` fail on
insufficient balance in token contracts).

The CoSplit analysis cares about two properties captured here:

* ``COMMUTATIVE_ADDITIVE`` — builtins whose repeated application to a
  field commutes (integer ``add``/``sub`` by amounts not derived from
  the field itself);
* ``GAS_COSTS`` — per-builtin gas, used by the chain's cost model.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable

from . import types as ty
from .errors import EvalError, OutOfBoundsError
from .types import (
    ADTType, MapType, PrimType, ScillaType, BOOL, BNUM, STRING, UINT32,
    is_int_type, int_bounds,
)
from .values import (
    ADTVal, BNumVal, ByStrVal, IntVal, MapVal, StringVal, Value,
    bool_val, list_to_value, pair, some, none, values_equal, canonical,
)

Impl = Callable[[list[Value]], Value]
TypeRule = Callable[[list[ScillaType]], ScillaType]


@dataclass(frozen=True)
class BuiltinDef:
    name: str
    arity: int
    impl: Impl
    type_rule: TypeRule
    gas: int = 1


REGISTRY: dict[str, BuiltinDef] = {}

# Builtins whose effect on a field commutes when the field contributes
# linearly (cardinality 1) to the written value.  See Sec. 3.4 of the
# paper: addition commutes; subtraction is addition of a negated
# constant, so it commutes too (and its bounds-check failure is what
# enforces no-double-spend sequentially within the owning shard).
COMMUTATIVE_ADDITIVE = {"add", "sub"}


def register(name: str, arity: int, type_rule: TypeRule, gas: int = 1):
    def wrap(impl: Impl) -> Impl:
        REGISTRY[name] = BuiltinDef(name, arity, impl, type_rule, gas)
        return impl
    return wrap


def get_builtin(name: str) -> BuiltinDef:
    if name not in REGISTRY:
        raise EvalError(f"unknown builtin {name!r}")
    return REGISTRY[name]


# --------------------------------------------------------------------------
# Typing-rule helpers.
# --------------------------------------------------------------------------

def _same_int_binop(args: list[ScillaType]) -> ScillaType:
    a, b = args
    if not (is_int_type(a) and a == b):
        raise EvalError(f"integer builtin applied to {a}, {b}")
    return a


def _int_cmp(args: list[ScillaType]) -> ScillaType:
    _same_int_binop(args)
    return BOOL


def _eq_rule(args: list[ScillaType]) -> ScillaType:
    a, b = args
    if a != b:
        raise EvalError(f"eq applied to different types {a}, {b}")
    return BOOL


def _concat_rule(args: list[ScillaType]) -> ScillaType:
    a, b = args
    if a == STRING and b == STRING:
        return STRING
    if (isinstance(a, PrimType) and a.name.startswith("ByStr")
            and isinstance(b, PrimType) and b.name.startswith("ByStr")):
        wa, wb = ty.bystr_width(a), ty.bystr_width(b)
        if wa is not None and wb is not None:
            name = f"ByStr{wa + wb}"
            return PrimType(name if name in ty.BYSTR_NAMES else "ByStr")
        return PrimType("ByStr")
    raise EvalError(f"concat applied to {a}, {b}")


# --------------------------------------------------------------------------
# Integer arithmetic.
# --------------------------------------------------------------------------

def _check_int(value: int, typ: PrimType, op: str) -> IntVal:
    lo, hi = int_bounds(typ)
    if not lo <= value <= hi:
        raise OutOfBoundsError(f"{op} out of bounds for {typ}: {value}")
    return IntVal(value, typ)


def _int_args(args: list[Value], op: str) -> tuple[int, int, PrimType]:
    a, b = args
    if not isinstance(a, IntVal) or not isinstance(b, IntVal) or a.typ != b.typ:
        raise EvalError(f"{op} expects two integers of the same type")
    return a.value, b.value, a.typ


@register("add", 2, _same_int_binop, gas=4)
def _add(args: list[Value]) -> Value:
    a, b, typ = _int_args(args, "add")
    return _check_int(a + b, typ, "add")


@register("sub", 2, _same_int_binop, gas=4)
def _sub(args: list[Value]) -> Value:
    a, b, typ = _int_args(args, "sub")
    return _check_int(a - b, typ, "sub")


@register("mul", 2, _same_int_binop, gas=5)
def _mul(args: list[Value]) -> Value:
    a, b, typ = _int_args(args, "mul")
    return _check_int(a * b, typ, "mul")


@register("div", 2, _same_int_binop, gas=5)
def _div(args: list[Value]) -> Value:
    a, b, typ = _int_args(args, "div")
    if b == 0:
        raise EvalError("division by zero")
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return _check_int(q, typ, "div")


@register("rem", 2, _same_int_binop, gas=5)
def _rem(args: list[Value]) -> Value:
    a, b, typ = _int_args(args, "rem")
    if b == 0:
        raise EvalError("remainder by zero")
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return _check_int(a - b * q, typ, "rem")


@register("pow", 2, lambda ts: _pow_rule(ts), gas=8)
def _pow(args: list[Value]) -> Value:
    a, b = args
    if not isinstance(a, IntVal) or not isinstance(b, IntVal):
        raise EvalError("pow expects integers")
    if b.typ != UINT32:
        raise EvalError("pow exponent must be Uint32")
    return _check_int(a.value ** b.value, a.typ, "pow")


def _pow_rule(args: list[ScillaType]) -> ScillaType:
    base, expo = args
    if not is_int_type(base) or expo != UINT32:
        raise EvalError(f"pow applied to {base}, {expo}")
    return base


@register("lt", 2, _int_cmp, gas=4)
def _lt(args: list[Value]) -> Value:
    a, b, _ = _int_args(args, "lt")
    return bool_val(a < b)


@register("uint_le", 2, _int_cmp, gas=4)
def _uint_le(args: list[Value]) -> Value:
    # Convenience comparison used by several corpus contracts.
    a, b, _ = _int_args(args, "uint_le")
    return bool_val(a <= b)


@register("eq", 2, _eq_rule, gas=4)
def _eq(args: list[Value]) -> Value:
    return bool_val(values_equal(args[0], args[1]))


# --------------------------------------------------------------------------
# Strings and byte strings.
# --------------------------------------------------------------------------

@register("concat", 2, _concat_rule, gas=4)
def _concat(args: list[Value]) -> Value:
    a, b = args
    if isinstance(a, StringVal) and isinstance(b, StringVal):
        return StringVal(a.value + b.value)
    if isinstance(a, ByStrVal) and isinstance(b, ByStrVal):
        joined = a.hex + b.hex[2:]
        nbytes = (len(joined) - 2) // 2
        name = f"ByStr{nbytes}"
        typ = PrimType(name if name in ty.BYSTR_NAMES else "ByStr")
        return ByStrVal(joined, typ)
    raise EvalError("concat expects two strings or two byte strings")


@register("strlen", 1, lambda ts: _expect(ts[0], STRING, UINT32), gas=2)
def _strlen(args: list[Value]) -> Value:
    (a,) = args
    if not isinstance(a, StringVal):
        raise EvalError("strlen expects a string")
    return IntVal(len(a.value), UINT32)


@register("substr", 3, lambda ts: _substr_rule(ts), gas=4)
def _substr(args: list[Value]) -> Value:
    s, start, length = args
    if (not isinstance(s, StringVal) or not isinstance(start, IntVal)
            or not isinstance(length, IntVal)):
        raise EvalError("substr expects (String, Uint32, Uint32)")
    if start.value + length.value > len(s.value):
        raise EvalError("substr out of bounds")
    return StringVal(s.value[start.value:start.value + length.value])


def _substr_rule(args: list[ScillaType]) -> ScillaType:
    s, a, b = args
    if s != STRING or a != UINT32 or b != UINT32:
        raise EvalError("substr applied to wrong types")
    return STRING


def _expect(actual: ScillaType, expected: ScillaType, result: ScillaType) -> ScillaType:
    if actual != expected:
        raise EvalError(f"builtin expected {expected}, got {actual}")
    return result


@register("to_string", 1, lambda ts: STRING, gas=2)
def _to_string(args: list[Value]) -> Value:
    return StringVal(str(args[0]))


# --------------------------------------------------------------------------
# Hashing and signatures (deterministic stand-ins for real crypto).
# --------------------------------------------------------------------------

def _hash_value(v: Value, algo: str) -> ByStrVal:
    payload = json.dumps(canonical(v), sort_keys=True).encode()
    digest = hashlib.new(algo, payload).hexdigest()
    return ByStrVal("0x" + digest[:64], PrimType("ByStr32"))


@register("sha256hash", 1, lambda ts: PrimType("ByStr32"), gas=12)
def _sha256hash(args: list[Value]) -> Value:
    return _hash_value(args[0], "sha256")


@register("keccak256hash", 1, lambda ts: PrimType("ByStr32"), gas=12)
def _keccak256hash(args: list[Value]) -> Value:
    # Python's hashlib lacks keccak; sha3_256 is a faithful stand-in for
    # a 32-byte collision-resistant digest, which is all contracts need.
    return _hash_value(args[0], "sha3_256")


@register("ripemd160hash", 1, lambda ts: PrimType("ByStr20"), gas=12)
def _ripemd160hash(args: list[Value]) -> Value:
    payload = json.dumps(canonical(args[0]), sort_keys=True).encode()
    digest = hashlib.sha256(payload).hexdigest()
    return ByStrVal("0x" + digest[:40], ty.BYSTR20)


@register("schnorr_verify", 3, lambda ts: BOOL, gas=20)
def _schnorr_verify(args: list[Value]) -> Value:
    """Deterministic signature check stand-in.

    A "signature" is valid iff it equals the sha256 of (pubkey, msg).
    This preserves the control-flow shape contracts rely on without
    implementing elliptic curves.
    """
    pubkey, msg, signature = args
    expected = _hash_value(pair(pubkey, msg, ty.BYSTR, ty.BYSTR), "sha256")
    return bool_val(isinstance(signature, ByStrVal)
                    and signature.hex == expected.hex)


def make_schnorr_signature(pubkey: Value, msg: Value) -> ByStrVal:
    """Produce a signature that :func:`_schnorr_verify` accepts (test aid)."""
    return _hash_value(pair(pubkey, msg, ty.BYSTR, ty.BYSTR), "sha256")


# --------------------------------------------------------------------------
# Block numbers.
# --------------------------------------------------------------------------

@register("blt", 2, lambda ts: _expect(ts[0], BNUM, BOOL), gas=4)
def _blt(args: list[Value]) -> Value:
    a, b = args
    if not isinstance(a, BNumVal) or not isinstance(b, BNumVal):
        raise EvalError("blt expects two block numbers")
    return bool_val(a.value < b.value)


@register("badd", 2, lambda ts: BNUM, gas=4)
def _badd(args: list[Value]) -> Value:
    a, b = args
    if not isinstance(a, BNumVal) or not isinstance(b, IntVal):
        raise EvalError("badd expects (BNum, UintX)")
    return BNumVal(a.value + b.value)


@register("bsub", 2, lambda ts: PrimType("Int256"), gas=4)
def _bsub(args: list[Value]) -> Value:
    a, b = args
    if not isinstance(a, BNumVal) or not isinstance(b, BNumVal):
        raise EvalError("bsub expects two block numbers")
    return IntVal(a.value - b.value, PrimType("Int256"))


# --------------------------------------------------------------------------
# Conversions.
# --------------------------------------------------------------------------

def _register_conversions() -> None:
    for width in ty.INT_WIDTHS:
        for prefix in ("Uint", "Int"):
            target = PrimType(f"{prefix}{width}")

            def impl(args: list[Value], target: PrimType = target) -> Value:
                (a,) = args
                if isinstance(a, IntVal):
                    value = a.value
                elif isinstance(a, StringVal):
                    value = int(a.value)
                else:
                    raise EvalError(f"cannot convert {a} to {target}")
                lo, hi = int_bounds(target)
                if not lo <= value <= hi:
                    return none(target)
                return some(IntVal(value, target), target)

            name = f"to_{prefix.lower()}{width}"
            REGISTRY[name] = BuiltinDef(
                name, 1, impl,
                lambda ts, target=target: ADTType("Option", (target,)),
                gas=2,
            )


_register_conversions()


@register("to_nat", 1, lambda ts: _expect(ts[0], UINT32, ty.NAT), gas=4)
def _to_nat(args: list[Value]) -> Value:
    (a,) = args
    if not isinstance(a, IntVal):
        raise EvalError("to_nat expects Uint32")
    out = ADTVal("Nat", "Zero", ())
    for _ in range(a.value):
        out = ADTVal("Nat", "Succ", (), (out,))
    return out


# --------------------------------------------------------------------------
# Pure map builtins (on map *values*, not contract fields).
# --------------------------------------------------------------------------

def _map_rule_put(args: list[ScillaType]) -> ScillaType:
    m, k, v = args
    if not isinstance(m, MapType) or m.key != k or m.value != v:
        raise EvalError(f"put applied to {m}, {k}, {v}")
    return m


@register("put", 3, _map_rule_put, gas=8)
def _put(args: list[Value]) -> Value:
    m, k, v = args
    if not isinstance(m, MapVal):
        raise EvalError("put expects a map")
    out = m.copy()
    out.put(k, v)  # owned write: never leaks into the shared dict
    return out


def _map_rule_get(args: list[ScillaType]) -> ScillaType:
    m, k = args
    if not isinstance(m, MapType) or m.key != k:
        raise EvalError(f"get applied to {m}, {k}")
    return ADTType("Option", (m.value,))


@register("get", 2, _map_rule_get, gas=8)
def _get(args: list[Value]) -> Value:
    m, k = args
    if not isinstance(m, MapVal):
        raise EvalError("get expects a map")
    if k in m.entries:
        return some(m.entries[k], m.value_type)
    return none(m.value_type)


@register("contains", 2, lambda ts: BOOL, gas=8)
def _contains(args: list[Value]) -> Value:
    m, k = args
    if not isinstance(m, MapVal):
        raise EvalError("contains expects a map")
    return bool_val(k in m.entries)


@register("remove", 2, lambda ts: ts[0], gas=8)
def _remove(args: list[Value]) -> Value:
    m, k = args
    if not isinstance(m, MapVal):
        raise EvalError("remove expects a map")
    out = m.copy()
    out.remove(k)
    return out


def _map_rule_to_list(args: list[ScillaType]) -> ScillaType:
    (m,) = args
    if not isinstance(m, MapType):
        raise EvalError(f"to_list applied to {m}")
    return ty.list_of(ty.pair_of(m.key, m.value))


@register("to_list", 1, _map_rule_to_list, gas=8)
def _to_list(args: list[Value]) -> Value:
    (m,) = args
    if not isinstance(m, MapVal):
        raise EvalError("to_list expects a map")
    elem_t = ty.pair_of(m.key_type, m.value_type)
    items = [
        pair(k, v, m.key_type, m.value_type)
        for k, v in sorted(m.entries.items(), key=lambda kv: str(kv[0]))
    ]
    return list_to_value(items, elem_t)


@register("size", 1, lambda ts: UINT32, gas=4)
def _size(args: list[Value]) -> Value:
    (m,) = args
    if not isinstance(m, MapVal):
        raise EvalError("size expects a map")
    return IntVal(len(m.entries), UINT32)
