"""Scilla abstract syntax, mirroring Fig. 4 of the CoSplit paper.

Expressions are in A-normal form: applications, builtins, constructors
and messages take *atoms* (identifiers or literals) as arguments, and
all intermediate results are bound with ``let`` (in expressions) or
``=`` (in statements).  This is exactly the discipline of the real
Scilla language and is what makes the CoSplit effect analysis a direct
transcription of the syntax.

Every node carries an optional source location for error messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from .types import ScillaType


@dataclass(frozen=True)
class Loc:
    """A source location: line and column (1-based)."""

    line: int = 0
    col: int = 0

    def __str__(self) -> str:
        return f"{self.line}:{self.col}"


NOLOC = Loc()


# --------------------------------------------------------------------------
# Atoms: arguments to applications, builtins, constructors, messages.
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Ident:
    """An identifier occurrence."""

    name: str
    loc: Loc = NOLOC

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class LitAtom:
    """A literal used in argument position (e.g. ``Uint128 0``)."""

    value: object
    typ: ScillaType
    loc: Loc = NOLOC

    def __str__(self) -> str:
        return f"{self.typ} {self.value!r}"


Atom = Union[Ident, LitAtom]


# --------------------------------------------------------------------------
# Patterns.
# --------------------------------------------------------------------------

class Pattern:
    __slots__ = ()


@dataclass(frozen=True)
class WildcardPat(Pattern):
    loc: Loc = NOLOC

    def __str__(self) -> str:
        return "_"


@dataclass(frozen=True)
class BinderPat(Pattern):
    name: str
    loc: Loc = NOLOC

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ConstructorPat(Pattern):
    constructor: str
    args: tuple[Pattern, ...] = ()
    loc: Loc = NOLOC

    def __str__(self) -> str:
        if not self.args:
            return self.constructor
        inner = " ".join(
            f"({a})" if isinstance(a, ConstructorPat) and a.args else str(a)
            for a in self.args
        )
        return f"{self.constructor} {inner}"


def pattern_binders(pat: Pattern) -> list[str]:
    """All variable names bound by a pattern, in left-to-right order."""
    if isinstance(pat, BinderPat):
        return [pat.name]
    if isinstance(pat, ConstructorPat):
        out: list[str] = []
        for sub in pat.args:
            out.extend(pattern_binders(sub))
        return out
    return []


# --------------------------------------------------------------------------
# Expressions (pure fragment).
# --------------------------------------------------------------------------

class Expr:
    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    """``val v`` — a literal of a primitive type."""

    value: object
    typ: ScillaType
    loc: Loc = NOLOC


@dataclass(frozen=True)
class Var(Expr):
    """``var i`` — a variable reference."""

    name: str
    loc: Loc = NOLOC


@dataclass(frozen=True)
class MessageExpr(Expr):
    """``message (i -> atom)`` — a message/event/exception record.

    ``fields`` maps field names (``_tag``, ``_recipient``, ``_amount``,
    user payload names …) to atoms.
    """

    fields: tuple[tuple[str, Atom], ...]
    loc: Loc = NOLOC


@dataclass(frozen=True)
class Constr(Expr):
    """``constr c t i`` — saturated constructor application."""

    constructor: str
    type_args: tuple[ScillaType, ...]
    args: tuple[Atom, ...]
    loc: Loc = NOLOC


@dataclass(frozen=True)
class Builtin(Expr):
    """``builtin blt i`` — application of a built-in operation."""

    name: str
    args: tuple[Atom, ...]
    loc: Loc = NOLOC


@dataclass(frozen=True)
class Let(Expr):
    """``let i = e1 in e2`` with optional type annotation."""

    name: str
    annot: ScillaType | None
    bound: Expr
    body: Expr
    loc: Loc = NOLOC


@dataclass(frozen=True)
class Fun(Expr):
    """``fun (i : t) => e`` — a single-argument function."""

    param: str
    param_type: ScillaType
    body: Expr
    loc: Loc = NOLOC


@dataclass(frozen=True)
class App(Expr):
    """``app i i_j`` — application of a function to atoms."""

    func: Ident
    args: tuple[Atom, ...]
    loc: Loc = NOLOC


@dataclass(frozen=True)
class MatchExpr(Expr):
    """``match i pat => e`` — pattern match in expression position."""

    scrutinee: Ident
    clauses: tuple[tuple[Pattern, Expr], ...]
    loc: Loc = NOLOC


@dataclass(frozen=True)
class TFun(Expr):
    """``tfun 'A => e`` — type abstraction."""

    tvar: str
    body: Expr
    loc: Loc = NOLOC


@dataclass(frozen=True)
class TApp(Expr):
    """``inst i t`` / ``@i t`` — type instantiation."""

    func: Ident
    type_args: tuple[ScillaType, ...]
    loc: Loc = NOLOC


# --------------------------------------------------------------------------
# Statements (effectful fragment).
# --------------------------------------------------------------------------

class Stmt:
    __slots__ = ()


@dataclass(frozen=True)
class Load(Stmt):
    """``i1 <- f`` — read a whole contract field into a local."""

    lhs: str
    field: str
    loc: Loc = NOLOC


@dataclass(frozen=True)
class Store(Stmt):
    """``f := i2`` — overwrite a whole contract field."""

    field: str
    rhs: Atom
    loc: Loc = NOLOC


@dataclass(frozen=True)
class Bind(Stmt):
    """``i = e`` — pure binding of an expression."""

    lhs: str
    expr: Expr
    loc: Loc = NOLOC


@dataclass(frozen=True)
class MapUpdate(Stmt):
    """``m[k...] := v`` — in-place update of a (possibly nested) map."""

    map: str
    keys: tuple[Atom, ...]
    rhs: Atom
    loc: Loc = NOLOC


@dataclass(frozen=True)
class MapGet(Stmt):
    """``i <- m[k...]`` — fetch ``Some v``/``None`` from a map."""

    lhs: str
    map: str
    keys: tuple[Atom, ...]
    loc: Loc = NOLOC


@dataclass(frozen=True)
class MapGetExists(Stmt):
    """``i <- exists m[k...]`` — key-membership test (Bool)."""

    lhs: str
    map: str
    keys: tuple[Atom, ...]
    loc: Loc = NOLOC


@dataclass(frozen=True)
class MapDelete(Stmt):
    """``delete m[k...]`` — remove a key from a map."""

    map: str
    keys: tuple[Atom, ...]
    loc: Loc = NOLOC


@dataclass(frozen=True)
class ReadBlockchain(Stmt):
    """``i <- & BLOCKNUMBER`` — read blockchain metadata."""

    lhs: str
    entry: str
    loc: Loc = NOLOC


@dataclass(frozen=True)
class MatchStmt(Stmt):
    """``match i pat => s`` — pattern match in statement position."""

    scrutinee: Ident
    clauses: tuple[tuple[Pattern, tuple[Stmt, ...]], ...]
    loc: Loc = NOLOC


@dataclass(frozen=True)
class Accept(Stmt):
    """``accept`` — accept the incoming native-token amount."""

    loc: Loc = NOLOC


@dataclass(frozen=True)
class Send(Stmt):
    """``send i`` — emit a list of messages."""

    arg: Atom
    loc: Loc = NOLOC


@dataclass(frozen=True)
class Event(Stmt):
    """``event i`` — emit an event."""

    arg: Atom
    loc: Loc = NOLOC


@dataclass(frozen=True)
class Throw(Stmt):
    """``throw [i]`` — abort the transition with an exception."""

    arg: Atom | None = None
    loc: Loc = NOLOC


@dataclass(frozen=True)
class CallProc(Stmt):
    """``ProcName a1 a2 …`` — call a contract procedure."""

    proc: str
    args: tuple[Atom, ...] = ()
    loc: Loc = NOLOC


# --------------------------------------------------------------------------
# Top-level declarations.
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Param:
    """A typed formal parameter (of a transition, procedure, contract)."""

    name: str
    typ: ScillaType
    loc: Loc = NOLOC

    def __str__(self) -> str:
        return f"{self.name}: {self.typ}"


@dataclass(frozen=True)
class LibEntry:
    """``let name [: t] = expr`` at library level."""

    name: str
    annot: ScillaType | None
    expr: Expr
    loc: Loc = NOLOC


@dataclass(frozen=True)
class LibTypeDef:
    """A user-defined ADT: ``type T = | C1 of t... | C2``."""

    name: str
    constructors: tuple[tuple[str, tuple[ScillaType, ...]], ...]
    loc: Loc = NOLOC


@dataclass(frozen=True)
class Library:
    name: str
    entries: tuple[Union[LibEntry, LibTypeDef], ...] = ()


@dataclass(frozen=True)
class Field:
    """A mutable contract field declaration with initialiser."""

    name: str
    typ: ScillaType
    init: Expr
    loc: Loc = NOLOC


@dataclass(frozen=True)
class Component:
    """A transition or procedure: named, typed params, body."""

    kind: str  # "transition" | "procedure"
    name: str
    params: tuple[Param, ...]
    body: tuple[Stmt, ...]
    loc: Loc = NOLOC

    @property
    def is_transition(self) -> bool:
        return self.kind == "transition"


@dataclass(frozen=True)
class Contract:
    name: str
    params: tuple[Param, ...]
    fields: tuple[Field, ...]
    components: tuple[Component, ...]
    loc: Loc = NOLOC

    @property
    def transitions(self) -> tuple[Component, ...]:
        return tuple(c for c in self.components if c.is_transition)

    @property
    def procedures(self) -> tuple[Component, ...]:
        return tuple(c for c in self.components if not c.is_transition)

    def component(self, name: str) -> Component:
        for c in self.components:
            if c.name == name:
                return c
        raise KeyError(f"contract {self.name} has no component {name}")

    def field(self, name: str) -> Field:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(f"contract {self.name} has no field {name}")


@dataclass(frozen=True)
class Module:
    """A whole ``.scilla`` file: version, optional library, contract."""

    version: int
    library: Library | None
    contract: Contract
    source_name: str = "<unknown>"


# Implicit parameters available in every transition body.
IMPLICIT_PARAMS = ("_sender", "_origin", "_amount")

# Reserved message field names.
MSG_TAG = "_tag"
MSG_RECIPIENT = "_recipient"
MSG_AMOUNT = "_amount"
MSG_EVENTNAME = "_eventname"
MSG_EXCEPTION = "_exception"
