"""Mutable contract state, write tracking, and the state journal.

The contract state maps field names to runtime values.  Map-typed
fields hold :class:`~repro.scilla.values.MapVal`, possibly nested.
The interpreter mutates state in place but records an *undo log* so a
failed transition can roll back, and a *write set* so the chain
substrate can compute per-shard state deltas without diffing whole
maps.

Copies are structural (copy-on-write): :meth:`ContractState.fork` is
O(number of fields), sharing every map's entry dict with the source
until one side is first written.  All mutation flows through the owned
write paths below (``write`` / ``map_put`` / ``map_delete``), which
materialise private dicts along the written path only — so a fork of a
million-entry token map costs a dict-wrapper per field, not a deep
copy (docs/STATE.md).

:class:`StateJournal` generalises the per-transition undo log to the
network level: every write to a journal-attached state appends an undo
entry, and a :class:`~repro.chain.recovery.NetworkCheckpoint` becomes
a mark into that log — ``take`` is O(1), ``restore`` replays the undo
entries above the mark in reverse.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from .errors import ExecError
from .types import MapType, ScillaType
from .values import MapVal, Value


# Sentinel for "entry was absent" in undo logs and write sets.  A true
# singleton: equality holds for any two instances and unpickling
# resolves to the canonical MISSING, so sentinels survive the process
# boundary of the parallel lane executor.
class _Missing:
    def __repr__(self) -> str:
        return "MISSING"

    def __eq__(self, other) -> bool:
        return isinstance(other, _Missing)

    def __hash__(self) -> int:
        return hash(_Missing)

    def __reduce__(self):
        return (_missing_singleton, ())


MISSING = _Missing()


def _missing_singleton() -> "_Missing":
    return MISSING


# A state location: a field name plus a (possibly empty) key path into
# nested maps.  Keys are runtime values (hashable primitives).
StateKey = tuple[str, tuple[Value, ...]]


class ContractState:
    """The mutable replicated state of one deployed contract.

    ``field_types`` and ``immutables`` are fixed at deploy time and
    shared (by reference) between a state and its forks; ``fields``
    and the native balance are per-fork.  When ``journal`` is attached
    (the network does this for every globally-visible state), each
    write records its undo entry there before mutating.
    """

    __slots__ = ("address", "fields", "field_types", "immutables",
                 "_balance", "journal")

    def __init__(self, address: str, fields: dict[str, Value],
                 field_types: dict[str, ScillaType],
                 immutables: dict[str, Value] | None = None,
                 balance: int = 0):
        self.address = address
        self.fields = fields
        self.field_types = field_types
        self.immutables = immutables if immutables is not None else {}
        self._balance = balance
        self.journal: "StateJournal | None" = None

    def __repr__(self) -> str:
        return (f"ContractState(address={self.address!r}, "
                f"fields={sorted(self.fields)}, balance={self._balance})")

    # Forks never carry the journal across a pickle (process lanes) —
    # worker-side states are private and unjournaled.
    def __getstate__(self):
        return (self.address, self.fields, self.field_types,
                self.immutables, self._balance)

    def __setstate__(self, state) -> None:
        (self.address, self.fields, self.field_types,
         self.immutables, self._balance) = state
        self.journal = None

    # -- native balance (journal-hooked) ------------------------------------

    @property
    def balance(self) -> int:
        return self._balance

    @balance.setter
    def balance(self, value: int) -> None:
        j = self.journal
        if j is not None:
            j.record_balance(self, self._balance)
        self._balance = value

    # -- copying ------------------------------------------------------------

    def fork(self) -> "ContractState":
        """Structural-sharing copy — the single copy policy for
        checkpoints, lane payloads, and the serial lane path.

        O(number of fields): each map field becomes a CoW wrapper over
        the shared entry dict.  The fork is unjournaled; behaviour is
        indistinguishable from a deep copy as long as every mutation
        flows through the owned write paths (which it does — see
        tests/test_state_journal.py for the aliasing property tests).
        """
        return ContractState(
            self.address,
            {k: (v.copy() if isinstance(v, MapVal) else v)
             for k, v in self.fields.items()},
            self.field_types,
            self.immutables,
            self._balance,
        )

    # Legacy name kept for the many call sites that predate fork().
    copy = fork

    # -- raw accessors ------------------------------------------------------

    def get_field(self, name: str) -> Value:
        if name not in self.fields:
            raise ExecError(f"unknown field {name!r}")
        return self.fields[name]

    def _descend(self, name: str, keys: tuple[Value, ...], create: bool,
                 own: bool = False):
        """Walk nested maps along ``keys[:-1]``, returning the leaf map.

        With ``create=True`` missing intermediate maps are created, as
        Scilla's in-place map update semantics prescribes.  With
        ``own=True`` (write paths) every map along the walk first
        materialises a private entry dict, so the mutation can never
        leak into a structurally-shared fork.
        """
        current = self.get_field(name)
        typ = self.field_types.get(name)
        for key in keys[:-1]:
            if not isinstance(current, MapVal):
                raise ExecError(f"field {name!r} is not a nested map")
            if own:
                current._own()
            if key not in current.entries:
                if not create:
                    return None
                if not isinstance(typ, MapType) or not isinstance(typ.value, MapType):
                    raise ExecError(f"cannot create nested map in {name!r}")
                current.entries[key] = MapVal(typ.value.key, typ.value.value)
            child = current.entries[key]
            if own:
                # Paged parent: the nested map is about to be mutated in
                # place, which its __setitem__ will never see — flag the
                # row for writeback explicitly.
                mark_dirty = getattr(current.entries, "mark_dirty", None)
                if mark_dirty is not None:
                    mark_dirty(key)
            current = child
            typ = typ.value if isinstance(typ, MapType) else None
        if not isinstance(current, MapVal):
            raise ExecError(f"field {name!r} is not a map")
        if own:
            current._own()
        return current

    def map_get(self, name: str, keys: tuple[Value, ...]) -> Value | _Missing:
        leaf = self._descend(name, keys, create=False)
        if leaf is None or keys[-1] not in leaf.entries:
            return MISSING
        return leaf.entries[keys[-1]]

    def map_put(self, name: str, keys: tuple[Value, ...], value: Value) -> None:
        self._journal_write((name, keys))
        leaf = self._descend(name, keys, create=True, own=True)
        assert leaf is not None
        leaf.entries[keys[-1]] = value

    def map_delete(self, name: str, keys: tuple[Value, ...]) -> None:
        self._journal_write((name, keys))
        leaf = self._descend(name, keys, create=False, own=True)
        if leaf is not None:
            leaf.entries.pop(keys[-1], None)

    def read(self, key: StateKey) -> Value | _Missing:
        """Read any state location (whole field or map entry)."""
        name, keys = key
        if not keys:
            return self.fields.get(name, MISSING)
        return self.map_get(name, keys)

    def write(self, key: StateKey, value: Value | _Missing) -> None:
        """Write any state location; MISSING deletes a map entry."""
        name, keys = key
        if not keys:
            if isinstance(value, _Missing):
                raise ExecError("cannot delete a whole field")
            self._journal_write(key)
            self.fields[name] = value
            return
        if isinstance(value, _Missing):
            self.map_delete(name, keys)
        else:
            self.map_put(name, keys, value)

    def _journal_write(self, key: StateKey) -> None:
        j = self.journal
        if j is not None:
            j.record_write(self, key)


def _capture_undo(state: ContractState, key: StateKey
                  ) -> tuple[StateKey, Value | _Missing]:
    """The (location, old value) pair that undoes an imminent write.

    If a prefix of the key path is absent, the undo action is to
    delete that prefix (the write will create intermediate maps that
    must disappear on rollback).  Old values are captured *by
    reference*: a replaced value drops out of the live tree at the
    write, and everything still in the tree is only ever mutated
    through the owned (CoW-safe) write paths — so the reference stays
    valid without a deep copy.
    """
    name, keys = key
    if not keys:
        return key, state.fields.get(name, MISSING)
    current: Value | _Missing = state.fields.get(name, MISSING)
    for i, k in enumerate(keys):
        if not isinstance(current, MapVal) or k not in current.entries:
            return (name, keys[: i + 1]), MISSING
        current = current.entries[k]
    return key, current


def _apply_undo(state: ContractState, key: StateKey,
                old: Value | _Missing) -> None:
    name, keys = key
    if not keys:
        if isinstance(old, _Missing):
            state.fields.pop(name, None)
        else:
            state.fields[name] = old
    elif isinstance(old, _Missing):
        state.map_delete(name, keys)
    else:
        state.map_put(name, keys, old)


@dataclass
class WriteLog:
    """Undo + redo information for a single transition execution."""

    undo: dict[StateKey, Value | _Missing] = dc_field(default_factory=dict)
    writes: dict[StateKey, Value | _Missing] = dc_field(default_factory=dict)

    def record(self, state: ContractState, key: StateKey,
               new_value: Value | _Missing) -> None:
        undo_key, undo_val = _capture_undo(state, key)
        if undo_key not in self.undo:
            self.undo[undo_key] = undo_val
        self.writes[key] = new_value

    def rollback(self, state: ContractState) -> None:
        # Apply in reverse insertion order so that prefix deletions (which
        # were necessarily recorded before deeper writes under them) run
        # after any value restorations beneath them.
        for key, old in reversed(list(self.undo.items())):
            _apply_undo(state, key, old)
        self.undo.clear()
        self.writes.clear()


class JournalError(Exception):
    """Rollback to a mark the journal no longer covers."""


class StateJournal:
    """A network-wide undo log over journal-attached contract states.

    Entries carry everything needed to reverse one mutation:

    * ``("write", state, undo_key, old)`` — a field/map write,
      captured with the same prefix-deletion logic as ``WriteLog``;
    * ``("balance", state, old)`` — a native-balance change;
    * ``("rebind", holder, old_state)`` — a ``DeployedContract`` whose
      ``state`` attribute was swapped (the FSD merge does this).

    Positions are *absolute* sequence numbers, so entries can be
    truncated from the front without invalidating marks: a mark is
    released when its checkpoint commits, and the log drops everything
    below the oldest outstanding mark (everything, when none are
    outstanding).  The log is self-consistent under re-entrant undo —
    a transition rollback on a journal-attached state appends fresh
    entries that reverse correctly when the journal itself unwinds.
    """

    def __init__(self) -> None:
        self._entries: list[tuple] = []
        self._base = 0          # absolute sequence of _entries[0]
        self._marks: list[int] = []   # outstanding marks (absolute)
        self._suspended = False

    @property
    def depth(self) -> int:
        """Entries currently retained (outstanding-mark backlog)."""
        return len(self._entries)

    @property
    def seq(self) -> int:
        """The absolute sequence number of the next entry."""
        return self._base + len(self._entries)

    @property
    def entries(self) -> tuple:
        """Read-only view of the retained undo entries, oldest first.

        The speculative scheduler reads a sandbox's private journal
        through this to derive its exact write set, and the footprint
        soundness oracle checks every entry against the static
        analysis (tests/test_analysis_soundness.py).
        """
        return tuple(self._entries)

    # -- recording ----------------------------------------------------------

    def record_write(self, state: ContractState, key: StateKey) -> None:
        if self._suspended:
            return
        undo_key, undo_val = _capture_undo(state, key)
        self._entries.append(("write", state, undo_key, undo_val))

    def record_balance(self, state: ContractState, old: int) -> None:
        if self._suspended:
            return
        self._entries.append(("balance", state, old))

    def record_rebind(self, holder, old_state: ContractState) -> None:
        """``holder.state`` is about to be replaced (e.g. delta merge)."""
        if self._suspended:
            return
        self._entries.append(("rebind", holder, old_state))

    # -- marks (checkpoint protocol) ----------------------------------------

    def mark(self) -> int:
        """Open a rollback point; pair with :meth:`release`."""
        m = self.seq
        self._marks.append(m)
        return m

    def release(self, mark: int) -> None:
        """Commit past a mark; entries below the oldest outstanding
        mark are dropped.  Releasing an unknown mark is a no-op (a
        checkpoint may be released at most once but restored many
        times)."""
        try:
            self._marks.remove(mark)
        except ValueError:
            return
        self._truncate()

    def _truncate(self) -> None:
        floor = min(self._marks) if self._marks else self.seq
        if floor > self._base:
            del self._entries[: floor - self._base]
            self._base = floor

    def rollback_to(self, mark: int) -> None:
        """Undo every entry above ``mark``, newest first.

        Idempotent and repeatable: after one rollback the log head sits
        at the mark, so rolling back again is a no-op — the contract
        ``NetworkCheckpoint.restore`` relies on for repeated view
        changes.  Recording is suspended while unwinding (the undo
        writes themselves must not re-journal).
        """
        if mark < self._base:
            raise JournalError(
                f"mark {mark} was truncated (journal base {self._base}); "
                f"the checkpoint was already released")
        self._suspended = True
        try:
            while self.seq > mark:
                entry = self._entries.pop()
                kind = entry[0]
                if kind == "write":
                    _, state, key, old = entry
                    _apply_undo(state, key, old)
                elif kind == "balance":
                    _, state, old = entry
                    state._balance = old
                else:  # "rebind"
                    _, holder, old_state = entry
                    holder.state = old_state
        finally:
            self._suspended = False
