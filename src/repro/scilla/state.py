"""Mutable contract state and write tracking.

The contract state maps field names to runtime values.  Map-typed
fields hold :class:`~repro.scilla.values.MapVal`, possibly nested.
The interpreter mutates state in place but records an *undo log* so a
failed transition can roll back, and a *write set* so the chain
substrate can compute per-shard state deltas without diffing whole
maps.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field as dc_field

from .errors import ExecError
from .types import MapType, ScillaType
from .values import MapVal, Value


# Sentinel for "entry was absent" in undo logs and write sets.  A true
# singleton: equality holds for any two instances and unpickling
# resolves to the canonical MISSING, so sentinels survive the process
# boundary of the parallel lane executor.
class _Missing:
    def __repr__(self) -> str:
        return "MISSING"

    def __eq__(self, other) -> bool:
        return isinstance(other, _Missing)

    def __hash__(self) -> int:
        return hash(_Missing)

    def __reduce__(self):
        return (_missing_singleton, ())


MISSING = _Missing()


def _missing_singleton() -> "_Missing":
    return MISSING


# A state location: a field name plus a (possibly empty) key path into
# nested maps.  Keys are runtime values (hashable primitives).
StateKey = tuple[str, tuple[Value, ...]]


@dataclass
class ContractState:
    """The mutable replicated state of one deployed contract."""

    address: str
    fields: dict[str, Value]
    field_types: dict[str, ScillaType]
    immutables: dict[str, Value] = dc_field(default_factory=dict)
    balance: int = 0  # native token balance (QA)

    def copy(self) -> "ContractState":
        return ContractState(
            self.address,
            {k: (v.copy() if isinstance(v, MapVal) else v)
             for k, v in self.fields.items()},
            dict(self.field_types),
            dict(self.immutables),
            self.balance,
        )

    # -- raw accessors ------------------------------------------------------

    def get_field(self, name: str) -> Value:
        if name not in self.fields:
            raise ExecError(f"unknown field {name!r}")
        return self.fields[name]

    def _descend(self, name: str, keys: tuple[Value, ...], create: bool):
        """Walk nested maps along ``keys[:-1]``, returning the leaf map.

        With ``create=True`` missing intermediate maps are created, as
        Scilla's in-place map update semantics prescribes.
        """
        current = self.get_field(name)
        typ = self.field_types.get(name)
        for key in keys[:-1]:
            if not isinstance(current, MapVal):
                raise ExecError(f"field {name!r} is not a nested map")
            if key not in current.entries:
                if not create:
                    return None
                if not isinstance(typ, MapType) or not isinstance(typ.value, MapType):
                    raise ExecError(f"cannot create nested map in {name!r}")
                current.entries[key] = MapVal(typ.value.key, typ.value.value)
            current = current.entries[key]
            typ = typ.value if isinstance(typ, MapType) else None
        if not isinstance(current, MapVal):
            raise ExecError(f"field {name!r} is not a map")
        return current

    def map_get(self, name: str, keys: tuple[Value, ...]) -> Value | _Missing:
        leaf = self._descend(name, keys, create=False)
        if leaf is None or keys[-1] not in leaf.entries:
            return MISSING
        return leaf.entries[keys[-1]]

    def map_put(self, name: str, keys: tuple[Value, ...], value: Value) -> None:
        leaf = self._descend(name, keys, create=True)
        assert leaf is not None
        leaf.entries[keys[-1]] = value

    def map_delete(self, name: str, keys: tuple[Value, ...]) -> None:
        leaf = self._descend(name, keys, create=False)
        if leaf is not None:
            leaf.entries.pop(keys[-1], None)

    def read(self, key: StateKey) -> Value | _Missing:
        """Read any state location (whole field or map entry)."""
        name, keys = key
        if not keys:
            return self.fields.get(name, MISSING)
        return self.map_get(name, keys)

    def write(self, key: StateKey, value: Value | _Missing) -> None:
        """Write any state location; MISSING deletes a map entry."""
        name, keys = key
        if not keys:
            if isinstance(value, _Missing):
                raise ExecError("cannot delete a whole field")
            self.fields[name] = value
            return
        if isinstance(value, _Missing):
            self.map_delete(name, keys)
        else:
            self.map_put(name, keys, value)


@dataclass
class WriteLog:
    """Undo + redo information for a single transition execution."""

    undo: dict[StateKey, Value | _Missing] = dc_field(default_factory=dict)
    writes: dict[StateKey, Value | _Missing] = dc_field(default_factory=dict)

    def record(self, state: ContractState, key: StateKey,
               new_value: Value | _Missing) -> None:
        name, keys = key
        if not keys:
            if key not in self.undo:
                self.undo[key] = copy.deepcopy(state.fields.get(name, MISSING))
        else:
            # Walk nested maps; if a prefix of the key path is absent, the
            # undo action is to delete that prefix (the write will create
            # intermediate maps that must disappear on rollback).
            current: Value | _Missing = state.fields.get(name, MISSING)
            undo_key: StateKey | None = None
            undo_val: Value | _Missing = MISSING
            for i, k in enumerate(keys):
                if not isinstance(current, MapVal) or k not in current.entries:
                    undo_key = (name, keys[: i + 1])
                    undo_val = MISSING
                    break
                current = current.entries[k]
            else:
                undo_key = key
                undo_val = copy.deepcopy(current)
            if undo_key not in self.undo:
                self.undo[undo_key] = undo_val
        self.writes[key] = new_value

    def rollback(self, state: ContractState) -> None:
        # Apply in reverse insertion order so that prefix deletions (which
        # were necessarily recorded before deeper writes under them) run
        # after any value restorations beneath them.
        for key, old in reversed(list(self.undo.items())):
            state.write(key, old)
        self.undo.clear()
        self.writes.clear()
