"""Synthetic Ethereum transaction trace (substitute for Fig. 1 data).

The paper samples 16,611 blocks (1.1M transactions) from Ethereum up
to block 9.25M and classifies each transaction as a plain transfer, a
single-contract call (further split into ERC20 token transfers vs
other calls), a multi-contract call, or other.  We cannot ship the
Ethereum mainnet, so this module generates a parametric synthetic
chain whose per-era type mix is calibrated to the trends the paper
reports: transfers on a solid downward trend, single-contract calls
rising to ~55% of recent blocks, and ERC20 transfers dominating the
single-call category.  The Fig. 1 harness *measures* the trace with
the same sampling methodology (random block sample, 100K-block bins,
99% confidence margin), exercising the full measurement code path.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

MAX_BLOCK = 10_000_000

TRANSFER = "transfer"
SINGLE_CALL = "single-call"
MULTI_CALL = "multi-call"
OTHER = "other"
ERC20_CALL = "erc20-single-call"
OTHER_CALL = "other-single-call"


def _lerp(points: list[tuple[float, float]], x: float) -> float:
    """Piecewise-linear interpolation through control points."""
    if x <= points[0][0]:
        return points[0][1]
    for (x0, y0), (x1, y1) in zip(points, points[1:]):
        if x <= x1:
            t = (x - x0) / (x1 - x0)
            return y0 + t * (y1 - y0)
    return points[-1][1]


# Control points (block number in millions, share) calibrated to the
# paper's Fig. 1: transfers decline from ~80% to ~35%; single-contract
# calls climb to ~55%; multi-calls grow slowly; the remainder is other.
_TRANSFER_TREND = [(0.0, 0.82), (2.0, 0.68), (4.0, 0.55), (6.0, 0.46),
                   (8.0, 0.39), (10.0, 0.34)]
_SINGLE_TREND = [(0.0, 0.12), (2.0, 0.24), (4.0, 0.34), (6.0, 0.43),
                 (8.0, 0.50), (10.0, 0.55)]
_MULTI_TREND = [(0.0, 0.03), (4.0, 0.06), (8.0, 0.09), (10.0, 0.09)]
# ERC20's share *within* single-contract calls.
_ERC20_TREND = [(0.0, 0.15), (2.0, 0.35), (4.0, 0.55), (6.0, 0.62),
                (8.0, 0.68), (10.0, 0.70)]


def type_mix(block: int) -> dict[str, float]:
    """The expected transaction-type distribution at a block height."""
    m = block / 1e6
    transfer = _lerp(_TRANSFER_TREND, m)
    single = _lerp(_SINGLE_TREND, m)
    multi = _lerp(_MULTI_TREND, m)
    other = max(0.0, 1.0 - transfer - single - multi)
    return {TRANSFER: transfer, SINGLE_CALL: single,
            MULTI_CALL: multi, OTHER: other}


def erc20_share(block: int) -> float:
    return _lerp(_ERC20_TREND, block / 1e6)


@dataclass(frozen=True)
class TraceTx:
    block: int
    kind: str          # TRANSFER / SINGLE_CALL / MULTI_CALL / OTHER
    subkind: str = ""  # ERC20_CALL / OTHER_CALL for single calls


def generate_block(block: int, rng: random.Random,
                   txns_per_block: int = 70) -> list[TraceTx]:
    """Generate one synthetic block of classified transactions."""
    mix = type_mix(block)
    kinds = list(mix)
    weights = [mix[k] for k in kinds]
    out = []
    for _ in range(txns_per_block):
        kind = rng.choices(kinds, weights=weights)[0]
        subkind = ""
        if kind == SINGLE_CALL:
            subkind = (ERC20_CALL if rng.random() < erc20_share(block)
                       else OTHER_CALL)
        out.append(TraceTx(block, kind, subkind))
    return out


def sample_blocks(n_blocks: int = 16_611, seed: int = 2020,
                  max_block: int = 9_250_000) -> list[int]:
    """The paper's methodology: a random sample of block numbers."""
    rng = random.Random(seed)
    return sorted(rng.sample(range(max_block), n_blocks))


def margin_of_error(sample_size: int, population: int,
                    confidence_z: float = 2.576) -> float:
    """Worst-case margin of error for a proportion estimate.

    The paper reports a 1% margin at 99% confidence for its 0.17%
    sample; same closed-form (with finite-population correction).
    """
    p = 0.5
    fpc = math.sqrt((population - sample_size) / (population - 1))
    return confidence_z * math.sqrt(p * (1 - p) / sample_size) * fpc
