"""Population-scale workloads for service mode (10^5–10^6 senders).

The Fig. 14 workloads pre-create every user account and pre-mint every
balance, which caps them at toy populations — setup alone would be
O(population) epochs.  ``ScaledFTTransfer`` reaches million-account
populations with O(1) work per transaction:

* **No upfront anything.**  Senders are drawn from an address space of
  ``population`` indices; accounts come into existence only when first
  touched (service-mode admission auto-funds unknown senders, a
  WAL-logged input).
* **Mint-on-first-use.**  The first time a sender is drawn, the admin
  mints its token balance; the sender starts transferring on its next
  visit.  The separation matters: a mint's credit is a commutative
  accrual, applied at the epoch-end FSD merge — a transfer in the
  *same* epoch would still read the pre-mint balance and fail with
  ``InsufficientFunds``, even on the same lane.  Revisits land epochs
  later, after the credit has merged.
* **O(touched) memory.**  The generator tracks only the senders it has
  already drawn (funded set + nonce counters); memory grows with
  *committed traffic*, never with the configured population.

The stream mixes revisits of known senders (exercising nonce sequences
and warm balances) with fresh senders (exercising admission, funding,
and population spread) at a seeded ratio.
"""

from __future__ import annotations

import random

from ..chain.transaction import Transaction, call
from ..contracts import CORPUS
from ..scilla.values import IntVal, StringVal, Value, addr, uint
from ..scilla import types as ty
from .generators import EXTRA_WORKLOADS, Workload, _user


class ScaledFTTransfer(Workload):
    """Random token transfers over an arbitrarily large population."""

    name = "FT transfer @scale"
    contract_name = "FungibleToken"
    selection = ("Mint", "Transfer", "TransferFrom")

    def __init__(self, population: int = 100_000,
                 n_users: int | None = None,
                 txns_per_epoch: int = 400, seed: int = 7,
                 revisit: float = 0.5, grant: int = 10**9):
        # Harnesses built for the Fig. 14 battery pass ``n_users``;
        # here it is just the population knob under another name.
        if n_users is not None:
            population = n_users
        # The base class would materialise ``users`` as a list — at
        # 10^6 addresses that alone defeats the point.  Addresses are
        # derived on demand from indices instead.
        super().__init__(n_users=0, txns_per_epoch=txns_per_epoch,
                         seed=seed)
        if population < 2:
            raise ValueError("population must be >= 2")
        if not (0.0 <= revisit < 1.0):
            raise ValueError("revisit must be in [0, 1)")
        self.population = population
        self.revisit = revisit
        self.grant = grant
        self._funded: set[str] = set()
        self._funded_list: list[str] = []

    def contract_params(self) -> dict[str, Value]:
        return {
            "contract_owner": addr(self.admin),
            "name": StringVal("Scale"), "symbol": StringVal("SCL"),
            "decimals": IntVal(6, ty.UINT32), "init_supply": uint(0),
        }

    def setup(self, net) -> None:
        self.rng = random.Random(self.seed)
        self._nonces = {}
        self._funded = set()
        self._funded_list = []
        net.create_account(self.admin)
        sharded = self.selection if net.use_signatures else None
        net.deploy(CORPUS[self.contract_name], self.contract_addr,
                   self.contract_params(), sharded_transitions=sharded)

    def touched_senders(self) -> int:
        return len(self._funded)

    def transactions(self, epoch: int) -> list[Transaction]:
        out: list[Transaction] = []
        rng = self.rng
        while len(out) < self.txns_per_epoch:
            if self._funded_list and rng.random() < self.revisit:
                sender = self._funded_list[
                    rng.randrange(len(self._funded_list))]
            else:
                sender = _user(rng.randrange(self.population))
            if sender not in self._funded:
                # Debut: mint only.  Transfers wait for a revisit, so
                # the accrued credit has merged by then (see module
                # docstring).
                out.append(call(
                    self.admin, self.contract_addr, "Mint",
                    {"recipient": addr(sender),
                     "amount": uint(self.grant)},
                    nonce=self.next_nonce(self.admin)))
                self._funded.add(sender)
                self._funded_list.append(sender)
                continue
            to = _user(rng.randrange(self.population))
            if to == sender:
                to = _user((int(sender, 16) - 0x1000 + 1)
                           % self.population)
            out.append(call(
                sender, self.contract_addr, "Transfer",
                {"to": addr(to), "amount": uint(1)},
                nonce=self.next_nonce(sender)))
        return out


EXTRA_WORKLOADS.append(ScaledFTTransfer)
