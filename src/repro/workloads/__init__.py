"""Workload generators: the Sec. 5.2 benchmark workloads and the
synthetic Ethereum trace substitute for Fig. 1."""

from .generators import (
    ALL_WORKLOADS, EXTRA_WORKLOADS, CFDonate, FTFund, FTTransfer,
    NFTMint, NFTTransfer, Payments, ProofIPFSRegister, UDBestow,
    UDConfig, Workload, workload_by_name,
)
from .scale import ScaledFTTransfer

__all__ = [
    "ALL_WORKLOADS", "EXTRA_WORKLOADS", "CFDonate", "FTFund",
    "FTTransfer", "NFTMint", "NFTTransfer", "Payments",
    "ProofIPFSRegister", "ScaledFTTransfer", "UDBestow", "UDConfig",
    "Workload", "workload_by_name",
]
