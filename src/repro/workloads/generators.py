"""The eight workloads of the paper's throughput evaluation (Fig. 14).

Each workload deploys one of the five evaluation contracts (with or
without a sharding signature), runs any setup epochs it needs (e.g.
pre-minting NFTs), and then emits a sustained stream of transactions
per epoch.  All randomness is seeded, so runs are reproducible.
"""

from __future__ import annotations

import random

from ..chain.network import Network
from ..chain.transaction import Transaction, call
from ..contracts import CORPUS
from ..scilla.values import ADTVal, IntVal, StringVal, Value, addr, uint
from ..scilla import types as ty


def _user(i: int) -> str:
    return "0x" + f"{i + 0x1000:040x}"


class Workload:
    """Base class: deploys a contract and streams transactions."""

    name = "base"
    contract_name = ""
    selection: tuple[str, ...] = ()
    contract_addr = "0x" + "c0" * 20

    def __init__(self, n_users: int = 240, txns_per_epoch: int = 400,
                 seed: int = 7):
        self.n_users = n_users
        self.txns_per_epoch = txns_per_epoch
        self.seed = seed
        self.rng = random.Random(seed)
        self.users = [_user(i) for i in range(n_users)]
        self.admin = "0x" + "ad" * 20
        self._nonces: dict[str, int] = {}

    # -- helpers ---------------------------------------------------------------

    def next_nonce(self, sender: str) -> int:
        n = self._nonces.get(sender, 0) + 1
        self._nonces[sender] = n
        return n

    def contract_params(self) -> dict[str, Value]:
        raise NotImplementedError

    def setup(self, net: Network) -> None:
        """Create accounts, deploy, run preparation epochs."""
        self.rng = random.Random(self.seed)
        self._nonces = {}
        net.create_account(self.admin)
        for u in self.users:
            net.create_account(u)
        sharded = self.selection if net.use_signatures else None
        net.deploy(CORPUS[self.contract_name], self.contract_addr,
                   self.contract_params(), sharded_transitions=sharded)
        self.prepare(net)

    def prepare(self, net: Network) -> None:
        """Optional setup epochs (e.g. minting initial state)."""

    def transactions(self, epoch: int) -> list[Transaction]:
        raise NotImplementedError


class FTFund(Workload):
    """Single-source token distribution: all transfers from one account.

    Every transaction touches ``balances[_sender]`` of the same sender,
    so all of them are owned by one shard — the workload that does not
    scale in Fig. 14.
    """

    name = "FT fund"
    contract_name = "FungibleToken"
    selection = ("Mint", "Transfer", "TransferFrom")

    def contract_params(self) -> dict[str, Value]:
        return {
            "contract_owner": addr(self.admin), "name": StringVal("Fund"),
            "symbol": StringVal("FND"), "decimals": IntVal(6, ty.UINT32),
            "init_supply": uint(10**15),
        }

    def prepare(self, net: Network) -> None:
        # The admin holds the initial supply and is the single source.
        pass

    def transactions(self, epoch: int) -> list[Transaction]:
        out = []
        for _ in range(self.txns_per_epoch):
            to = self.rng.choice(self.users)
            out.append(call(
                self.admin, self.contract_addr, "Transfer",
                {"to": addr(to), "amount": uint(1)},
                nonce=self.next_nonce(self.admin)))
        return out


class FTTransfer(Workload):
    """Random-to-random token transfers — the headline linear-scaling
    workload."""

    name = "FT transfer"
    contract_name = "FungibleToken"
    selection = ("Mint", "Transfer", "TransferFrom")

    def contract_params(self) -> dict[str, Value]:
        return {
            "contract_owner": addr(self.admin), "name": StringVal("Gold"),
            "symbol": StringVal("GLD"), "decimals": IntVal(6, ty.UINT32),
            "init_supply": uint(0),
        }

    def prepare(self, net: Network) -> None:
        txns = [
            call(self.admin, self.contract_addr, "Mint",
                 {"recipient": addr(u), "amount": uint(10**9)},
                 nonce=self.next_nonce(self.admin))
            for u in self.users
        ]
        net.process_epoch(txns, unlimited=True)
        net.blocks.pop()  # setup epoch is not part of the measurement

    def transactions(self, epoch: int) -> list[Transaction]:
        out = []
        for _ in range(self.txns_per_epoch):
            sender = self.rng.choice(self.users)
            to = self.rng.choice(self.users)
            if to == sender:
                to = self.users[(self.users.index(to) + 1) % self.n_users]
            out.append(call(
                sender, self.contract_addr, "Transfer",
                {"to": addr(to), "amount": uint(1)},
                nonce=self.next_nonce(sender)))
        return out


class CFDonate(Workload):
    """Crowdfund donations from distinct backers."""

    name = "CF donate"
    contract_name = "Crowdfunding"
    selection = ("Donate", "ClaimBack")

    def contract_params(self) -> dict[str, Value]:
        from ..scilla.values import BNumVal
        return {
            "campaign_owner": addr(self.admin),
            "goal": uint(10**12),
            "deadline": BNumVal(10**6),
        }

    def __init__(self, **kwargs):
        kwargs.setdefault("n_users", 6000)
        super().__init__(**kwargs)
        self._next_donor = 0

    def setup(self, net: Network) -> None:
        self._next_donor = 0
        super().setup(net)

    def transactions(self, epoch: int) -> list[Transaction]:
        # Each backer donates once; iterate through fresh donors.
        out = []
        for _ in range(self.txns_per_epoch):
            donor = self.users[self._next_donor % self.n_users]
            self._next_donor += 1
            out.append(call(
                donor, self.contract_addr, "Donate", {},
                nonce=self.next_nonce(donor), amount=100))
        return out


class NFTMint(Workload):
    """Single-sender mints of fresh token ids.

    Although every transaction comes from the minter, the footprint is
    keyed by the token id, so the paper's revised account model lets
    this single-source workload scale linearly.
    """

    name = "NFT mint"
    contract_name = "NonfungibleToken"
    selection = ("Mint", "Transfer")

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._next_token = 0

    def contract_params(self) -> dict[str, Value]:
        return {
            "contract_owner": addr(self.admin),
            "name": StringVal("Kitties"), "symbol": StringVal("KIT"),
        }

    def setup(self, net: Network) -> None:
        self._next_token = 0
        super().setup(net)

    def transactions(self, epoch: int) -> list[Transaction]:
        out = []
        for _ in range(self.txns_per_epoch):
            token = self._next_token
            self._next_token += 1
            to = self.rng.choice(self.users)
            out.append(call(
                self.admin, self.contract_addr, "Mint",
                {"to": addr(to), "token_id": IntVal(token, ty.PrimType("Uint256"))},
                nonce=self.next_nonce(self.admin)))
        return out


class NFTTransfer(Workload):
    """Owners move their pre-minted tokens around."""

    name = "NFT transfer"
    contract_name = "NonfungibleToken"
    selection = ("Mint", "Transfer")

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.token_owner: dict[int, str] = {}

    def contract_params(self) -> dict[str, Value]:
        return {
            "contract_owner": addr(self.admin),
            "name": StringVal("Plots"), "symbol": StringVal("PLT"),
        }

    def prepare(self, net: Network) -> None:
        self.token_owner = {}
        n_tokens = self.txns_per_epoch * 2
        txns = []
        for token in range(n_tokens):
            owner = self.users[token % self.n_users]
            self.token_owner[token] = owner
            txns.append(call(
                self.admin, self.contract_addr, "Mint",
                {"to": addr(owner),
                 "token_id": IntVal(token, ty.PrimType("Uint256"))},
                nonce=self.next_nonce(self.admin)))
        net.process_epoch(txns, unlimited=True)
        net.blocks.pop()

    def transactions(self, epoch: int) -> list[Transaction]:
        out = []
        tokens = self.rng.sample(sorted(self.token_owner),
                                 min(self.txns_per_epoch,
                                     len(self.token_owner)))
        for token in tokens:
            owner = self.token_owner[token]
            to = self.rng.choice(self.users)
            if to == owner:
                to = self.users[(self.users.index(to) + 1) % self.n_users]
            out.append(call(
                owner, self.contract_addr, "Transfer",
                {"token_owner": addr(owner), "to": addr(to),
                 "token_id": IntVal(token, ty.PrimType("Uint256"))},
                nonce=self.next_nonce(owner)))
            self.token_owner[token] = to
        return out


class ProofIPFSRegister(Workload):
    """Hash notarisation: two state components in different shards, so
    most transactions land in the DS committee (flat in Fig. 14)."""

    name = "ProofIPFS register"
    contract_name = "ProofIPFS"
    selection = ("Register",)

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._next_hash = 0

    def contract_params(self) -> dict[str, Value]:
        return {"initial_admin": addr(self.admin)}

    def setup(self, net: Network) -> None:
        self._next_hash = 0
        super().setup(net)

    def transactions(self, epoch: int) -> list[Transaction]:
        from ..scilla.values import ByStrVal
        out = []
        for _ in range(self.txns_per_epoch):
            h = self._next_hash
            self._next_hash += 1
            sender = self.rng.choice(self.users)
            ipfs_hash = ByStrVal("0x" + f"{h:064x}", ty.PrimType("ByStr32"))
            out.append(call(
                sender, self.contract_addr, "Register",
                {"ipfs_hash": ipfs_hash}, nonce=self.next_nonce(sender)))
        return out


class UDBestow(Workload):
    """Registrar grants fresh domain names (single sender, keyed by
    the domain node — scales like NFT mint)."""

    name = "UD bestow"
    contract_name = "UD_registry"
    selection = ("Bestow", "ConfigureNode", "ConfigureResolver")

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self._next_node = 0

    def contract_params(self) -> dict[str, Value]:
        return {"initial_admin": addr(self.admin),
                "initial_registrar": addr(self.admin)}

    def setup(self, net: Network) -> None:
        self._next_node = 0
        super().setup(net)

    def transactions(self, epoch: int) -> list[Transaction]:
        from ..scilla.values import ByStrVal
        out = []
        for _ in range(self.txns_per_epoch):
            node_id = self._next_node
            self._next_node += 1
            owner = self.rng.choice(self.users)
            node = ByStrVal("0x" + f"{node_id:064x}", ty.PrimType("ByStr32"))
            out.append(call(
                self.admin, self.contract_addr, "Bestow",
                {"node": node, "owner": addr(owner),
                 "resolver": addr(owner)},
                nonce=self.next_nonce(self.admin)))
        return out


class UDConfig(Workload):
    """Domain owners update the records of their pre-granted names."""

    name = "UD config"
    contract_name = "UD_registry"
    selection = ("Bestow", "ConfigureNode", "ConfigureResolver")

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.node_owner: dict[int, str] = {}

    def contract_params(self) -> dict[str, Value]:
        return {"initial_admin": addr(self.admin),
                "initial_registrar": addr(self.admin)}

    def prepare(self, net: Network) -> None:
        from ..scilla.values import ByStrVal
        self.node_owner = {}
        n_nodes = self.txns_per_epoch * 2
        txns = []
        for node_id in range(n_nodes):
            owner = self.users[node_id % self.n_users]
            self.node_owner[node_id] = owner
            node = ByStrVal("0x" + f"{node_id:064x}", ty.PrimType("ByStr32"))
            txns.append(call(
                self.admin, self.contract_addr, "Bestow",
                {"node": node, "owner": addr(owner),
                 "resolver": addr(owner)},
                nonce=self.next_nonce(self.admin)))
        net.process_epoch(txns, unlimited=True)
        net.blocks.pop()

    def transactions(self, epoch: int) -> list[Transaction]:
        from ..scilla.values import ByStrVal
        out = []
        nodes = self.rng.sample(sorted(self.node_owner),
                                min(self.txns_per_epoch,
                                    len(self.node_owner)))
        for node_id in nodes:
            owner = self.node_owner[node_id]
            node = ByStrVal("0x" + f"{node_id:064x}", ty.PrimType("ByStr32"))
            new_resolver = self.rng.choice(self.users)
            out.append(call(
                owner, self.contract_addr, "ConfigureResolver",
                {"node": node, "new_resolver": addr(new_resolver)},
                nonce=self.next_nonce(owner)))
        return out


class Payments(Workload):
    """Plain user-to-user payments — the transaction class every
    sharded chain handles natively (Sec. 1's motivating example).
    Deterministically assigned to the sender's home shard, so the
    workload scales with shard count even without CoSplit."""

    name = "payments"
    contract_name = "FungibleToken"  # deployed but unused
    selection = ()

    def contract_params(self):
        from ..scilla.values import StringVal, IntVal
        from ..scilla import types as ty
        return {
            "contract_owner": addr(self.admin), "name": StringVal("X"),
            "symbol": StringVal("X"), "decimals": IntVal(6, ty.UINT32),
            "init_supply": uint(0),
        }

    def setup(self, net: Network) -> None:
        self.rng = random.Random(self.seed)
        self._nonces = {}
        net.create_account(self.admin)
        for u in self.users:
            net.create_account(u)

    def transactions(self, epoch: int):
        from ..chain.transaction import payment
        out = []
        for _ in range(self.txns_per_epoch):
            sender = self.rng.choice(self.users)
            to = self.rng.choice(self.users)
            if to == sender:
                to = self.users[(self.users.index(to) + 1) % self.n_users]
            out.append(payment(sender, to, amount=1,
                               nonce=self.next_nonce(sender)))
        return out


class FTHammer(Workload):
    """Single-key contention hammer: distinct senders all crediting
    ONE shared recipient's ``balances`` entry.  Every pair of
    transactions conflicts on that key, so the speculative scheduler
    must measure a nonzero abort rate here — while staying
    serial-equivalent (tests/test_speculate_contention.py)."""

    name = "FT hammer"
    contract_name = "FungibleToken"
    selection = ("Mint", "Transfer", "TransferFrom")
    hot = "0x" + "07" * 20   # never a sender, so windows stay wide

    def contract_params(self) -> dict[str, Value]:
        return {
            "contract_owner": addr(self.admin), "name": StringVal("Hot"),
            "symbol": StringVal("HOT"), "decimals": IntVal(6, ty.UINT32),
            "init_supply": uint(0),
        }

    def prepare(self, net: Network) -> None:
        txns = [
            call(self.admin, self.contract_addr, "Mint",
                 {"recipient": addr(u), "amount": uint(10**9)},
                 nonce=self.next_nonce(self.admin))
            for u in self.users
        ]
        net.process_epoch(txns, unlimited=True)
        net.blocks.pop()  # setup epoch is not part of the measurement

    def transactions(self, epoch: int) -> list[Transaction]:
        out = []
        for k in range(self.txns_per_epoch):
            sender = self.users[k % self.n_users]   # round-robin senders
            out.append(call(
                sender, self.contract_addr, "Transfer",
                {"to": addr(self.hot), "amount": uint(1)},
                nonce=self.next_nonce(sender)))
        return out


class FTDisjoint(Workload):
    """The hammer's commuting twin: the first half of the users each
    send to a private recipient in the second half, so every lock set
    in a lane is pairwise disjoint and the speculative scheduler must
    commit with zero aborts (the other direction of the conflict
    oracle)."""

    name = "FT disjoint"
    contract_name = "FungibleToken"
    selection = ("Mint", "Transfer", "TransferFrom")

    def contract_params(self) -> dict[str, Value]:
        return {
            "contract_owner": addr(self.admin), "name": StringVal("Two"),
            "symbol": StringVal("TWO"), "decimals": IntVal(6, ty.UINT32),
            "init_supply": uint(0),
        }

    def prepare(self, net: Network) -> None:
        txns = [
            call(self.admin, self.contract_addr, "Mint",
                 {"recipient": addr(u), "amount": uint(10**9)},
                 nonce=self.next_nonce(self.admin))
            for u in self.users
        ]
        net.process_epoch(txns, unlimited=True)
        net.blocks.pop()

    def transactions(self, epoch: int) -> list[Transaction]:
        half = max(1, self.n_users // 2)
        out = []
        for k in range(self.txns_per_epoch):
            i = k % half
            sender = self.users[i]
            to = self.users[half + i] if half + i < self.n_users \
                else self.users[i]
            out.append(call(
                sender, self.contract_addr, "Transfer",
                {"to": addr(to), "amount": uint(1)},
                nonce=self.next_nonce(sender)))
        return out


ALL_WORKLOADS: list[type[Workload]] = [
    FTFund, FTTransfer, CFDonate, NFTMint, NFTTransfer,
    ProofIPFSRegister, UDBestow, UDConfig,
]

# Workloads registered outside the Fig. 14 battery (the service-mode
# scale workload lives in repro.workloads.scale); resolvable by name
# without enlarging every ALL_WORKLOADS-driven differential battery.
# The contention pair guards both directions of the speculative
# scheduler's conflict detection (docs/SCHEDULER.md).
EXTRA_WORKLOADS: list[type[Workload]] = [FTHammer, FTDisjoint]


def workload_by_name(name: str) -> type[Workload]:
    for cls in ALL_WORKLOADS + EXTRA_WORKLOADS:
        if cls.name == name:
            return cls
    raise KeyError(f"unknown workload {name!r}")
