"""Counters, gauges and fixed-bucket histograms.

Design constraints, in priority order:

1. **No-op when disabled.**  Instrumented code holds instrument
   handles; with the :data:`NULL_REGISTRY` those handles are shared
   null objects whose ``inc``/``set``/``observe`` bodies are ``pass``.
   Nothing allocates, nothing locks, nothing reads a clock.

2. **Deterministic counters.**  Every instrument declares whether its
   values are a pure function of the submitted workload
   (``deterministic=True``, the default) or may legitimately vary
   between runs — wall-clock durations, pool scheduling, WAL append
   counts across a resume.  :meth:`MetricsRegistry.snapshot` with
   ``deterministic_only=True`` yields exactly the reproducible subset,
   which differential tests compare byte-for-byte across executors.

3. **Mergeable.**  Counter values and histogram bucket vectors are
   sums, so folding a worker registry's snapshot into the
   coordinator's (:meth:`MetricsRegistry.merge_snapshot`) is
   associative and commutative with counts preserved — a lane may run
   serially inline or remotely in a pool worker and the merged totals
   come out identical.  Gauges carry a ``set`` flag and only transfer
   when they were actually written.

4. **Exact round-trips.**  ``snapshot() → json → from_snapshot()``
   reproduces the registry exactly (all values are ints, floats and
   strings), which is how durable network snapshots carry telemetry
   across a crash (:mod:`repro.chain.store`).
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left

# Default bucket edges (upper bounds; +Inf is implicit).  Nanosecond
# buckets cover 1µs .. ~17min in powers of 4; gas buckets cover the
# interpreter's realistic per-transaction range.
NS_BUCKETS = tuple(1_000 * 4 ** i for i in range(16))
MS_BUCKETS = tuple(4 ** i for i in range(12))
GAS_BUCKETS = (10, 25, 50, 100, 200, 400, 800, 1_600, 3_200, 6_400,
               12_800, 25_600)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "deterministic", "value", "_lock")

    def __init__(self, name: str, deterministic: bool,
                 lock: threading.RLock):
        self.name = name
        self.deterministic = deterministic
        self.value = 0
        self._lock = lock

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n

    def to_obj(self):
        return {"value": self.value, "deterministic": self.deterministic}


class Gauge:
    """A point-in-time value; remembers whether it was ever written."""

    __slots__ = ("name", "deterministic", "value", "set_", "_lock")

    def __init__(self, name: str, deterministic: bool,
                 lock: threading.RLock):
        self.name = name
        self.deterministic = deterministic
        self.value = 0
        self.set_ = False
        self._lock = lock

    def set(self, value) -> None:
        with self._lock:
            self.value = value
            self.set_ = True

    def to_obj(self):
        return {"value": self.value, "set": self.set_,
                "deterministic": self.deterministic}


class Histogram:
    """Fixed upper-bound buckets plus count and sum.

    ``bounds`` are the inclusive upper edges; one overflow bucket
    (+Inf) is implicit, so ``counts`` has ``len(bounds) + 1`` cells.
    Merging two histograms with identical bounds adds the vectors —
    associative, commutative, count-preserving (the property tests in
    ``tests/test_obs_properties.py`` pin this down).
    """

    __slots__ = ("name", "deterministic", "bounds", "counts", "count",
                 "sum", "_lock")

    def __init__(self, name: str, bounds, deterministic: bool,
                 lock: threading.RLock):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r} needs sorted, "
                             f"non-empty bucket bounds")
        self.name = name
        self.deterministic = deterministic
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0
        self._lock = lock

    def observe(self, value) -> None:
        with self._lock:
            self.counts[bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.sum += value

    def merge_from(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(f"histogram {self.name!r}: cannot merge "
                             f"mismatched bucket bounds")
        with self._lock:
            for i, c in enumerate(other.counts):
                self.counts[i] += c
            self.count += other.count
            self.sum += other.sum

    def to_obj(self):
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "count": self.count, "sum": self.sum,
                "deterministic": self.deterministic}

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 < q <= 1) from the buckets.

        Linear interpolation inside the winning bucket; observations in
        the +Inf overflow bucket answer with the largest finite bound
        (a floor for the true value — the buckets cannot say more).
        """
        with self._lock:
            return quantile_from_cells(self.bounds, self.counts,
                                       self.count, q)


def quantile_from_cells(bounds, counts, count: int, q: float) -> float:
    """Shared quantile estimator over histogram cells (live instruments
    and serialized snapshots alike)."""
    if not (0.0 < q <= 1.0):
        raise ValueError("quantile must be in (0, 1]")
    if count <= 0:
        return 0.0
    rank = q * count
    cumulative = 0
    for i, cell in enumerate(counts):
        if cell == 0:
            continue
        previous = cumulative
        cumulative += cell
        if cumulative >= rank:
            if i >= len(bounds):      # +Inf overflow bucket
                return float(bounds[-1])
            lower = float(bounds[i - 1]) if i > 0 else 0.0
            upper = float(bounds[i])
            return lower + (upper - lower) * (rank - previous) / cell
    return float(bounds[-1])          # pragma: no cover - cumulative==count


def quantile_from_snapshot(hist_obj, q: float) -> float:
    """Quantile straight from a snapshot's histogram object (the
    ``to_obj`` form), e.g. inside BENCH JSON writers."""
    return quantile_from_cells(hist_obj["bounds"], hist_obj["counts"],
                               hist_obj["count"], q)


class MetricsRegistry:
    """A named collection of instruments behind one lock.

    Registering an existing name returns the same instrument object
    (so modules can re-derive their handles idempotently); a name
    re-registered as a different kind — or a histogram with different
    bounds — is a programming error and raises.
    """

    enabled = True

    def __init__(self):
        self._lock = threading.RLock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- registration ---------------------------------------------------------

    def _fresh(self, name: str, kind: str) -> None:
        for store, label in ((self._counters, "counter"),
                             (self._gauges, "gauge"),
                             (self._histograms, "histogram")):
            if label != kind and name in store:
                raise ValueError(f"{name!r} is already a {label}")

    def counter(self, name: str, deterministic: bool = True) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._fresh(name, "counter")
                instrument = Counter(name, deterministic, self._lock)
                self._counters[name] = instrument
            return instrument

    def gauge(self, name: str, deterministic: bool = True) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._fresh(name, "gauge")
                instrument = Gauge(name, deterministic, self._lock)
                self._gauges[name] = instrument
            return instrument

    def histogram(self, name: str, bounds,
                  deterministic: bool = True) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._fresh(name, "histogram")
                instrument = Histogram(name, bounds, deterministic,
                                       self._lock)
                self._histograms[name] = instrument
            elif instrument.bounds != tuple(bounds):
                raise ValueError(f"histogram {name!r} re-registered "
                                 f"with different bounds")
            return instrument

    # -- snapshots ------------------------------------------------------------

    def snapshot(self, deterministic_only: bool = False) -> dict:
        """A JSON-able image of every instrument, sorted by name.

        With ``deterministic_only`` the image is restricted to
        instruments whose values are a pure function of the workload —
        the byte-comparable subset.
        """
        def keep(instrument) -> bool:
            return instrument.deterministic or not deterministic_only

        with self._lock:
            return {
                "counters": {n: c.to_obj() for n, c in
                             sorted(self._counters.items()) if keep(c)},
                "gauges": {n: g.to_obj() for n, g in
                           sorted(self._gauges.items()) if keep(g)},
                "histograms": {n: h.to_obj() for n, h in
                               sorted(self._histograms.items())
                               if keep(h)},
            }

    def deterministic_snapshot(self) -> dict:
        return self.snapshot(deterministic_only=True)

    def merge_snapshot(self, obj: dict) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histograms add (missing instruments are created
        with the snapshot's determinism flag); gauges transfer only if
        the source gauge was actually set.
        """
        with self._lock:
            for name, data in obj.get("counters", {}).items():
                self.counter(name, data["deterministic"]) \
                    .inc(data["value"])
            for name, data in obj.get("gauges", {}).items():
                gauge = self.gauge(name, data["deterministic"])
                if data["set"]:
                    gauge.set(data["value"])
            for name, data in obj.get("histograms", {}).items():
                hist = self.histogram(name, data["bounds"],
                                      data["deterministic"])
                if hist.bounds != tuple(data["bounds"]):
                    raise ValueError(f"histogram {name!r}: snapshot "
                                     f"bounds mismatch")
                for i, c in enumerate(data["counts"]):
                    hist.counts[i] += c
                hist.count += data["count"]
                hist.sum += data["sum"]

    def reset_to(self, obj: dict) -> None:
        """Make this registry's values exactly match a snapshot.

        Existing instruments missing from the snapshot are zeroed (the
        checkpoint-rollback case: instruments registered after the
        checkpoint was taken lose whatever the aborted attempt put in
        them); instruments only in the snapshot are created.
        """
        with self._lock:
            self._zero()
            self.merge_snapshot(obj)

    def _zero(self) -> None:
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0
            gauge.set_ = False
        for hist in self._histograms.values():
            hist.counts = [0] * (len(hist.bounds) + 1)
            hist.count = 0
            hist.sum = 0

    @classmethod
    def from_snapshot(cls, obj: dict) -> "MetricsRegistry":
        registry = cls()
        registry.merge_snapshot(obj)
        return registry

    def clear(self) -> None:
        with self._lock:
            self._zero()

    # -- rendering ------------------------------------------------------------

    def to_json(self, deterministic_only: bool = False) -> str:
        return json.dumps(self.snapshot(deterministic_only),
                          sort_keys=True, indent=2)

    def to_text(self) -> str:
        """A human-oriented listing, one instrument per line."""
        snap = self.snapshot()
        lines: list[str] = []
        for name, data in snap["counters"].items():
            lines.append(f"{name:40s} {data['value']}")
        for name, data in snap["gauges"].items():
            shown = data["value"] if data["set"] else "-"
            lines.append(f"{name:40s} {shown}")
        for name, data in snap["histograms"].items():
            mean = data["sum"] / data["count"] if data["count"] else 0.0
            lines.append(f"{name:40s} count={data['count']} "
                         f"sum={data['sum']:.0f} mean={mean:.1f}")
        return "\n".join(lines)

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition format (v0.0.4)."""
        def sanitize(name: str) -> str:
            cleaned = "".join(c if c.isalnum() else "_" for c in name)
            return f"{prefix}_{cleaned}"

        snap = self.snapshot()
        lines: list[str] = []
        for name, data in snap["counters"].items():
            metric = sanitize(name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {data['value']}")
        for name, data in snap["gauges"].items():
            metric = sanitize(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {data['value']}")
        for name, data in snap["histograms"].items():
            metric = sanitize(name)
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for bound, count in zip(data["bounds"], data["counts"]):
                cumulative += count
                lines.append(f'{metric}_bucket{{le="{bound}"}} '
                             f'{cumulative}')
            lines.append(f'{metric}_bucket{{le="+Inf"}} {data["count"]}')
            lines.append(f"{metric}_sum {data['sum']}")
            lines.append(f"{metric}_count {data['count']}")
        return "\n".join(lines) + ("\n" if lines else "")


# --------------------------------------------------------------------------
# The disabled implementation: shared null objects, empty methods.
# --------------------------------------------------------------------------

class _NullInstrument:
    """Answers every instrument method with nothing, instantly."""

    __slots__ = ()
    name = "<null>"
    deterministic = False
    value = 0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The disabled registry: hands out :data:`NULL_INSTRUMENT` and
    empty snapshots.  ``enabled`` lets instrumented code skip clock
    reads and snapshot plumbing entirely."""

    enabled = False

    def counter(self, name: str, deterministic: bool = True):
        return NULL_INSTRUMENT

    def gauge(self, name: str, deterministic: bool = True):
        return NULL_INSTRUMENT

    def histogram(self, name: str, bounds, deterministic: bool = True):
        return NULL_INSTRUMENT

    def snapshot(self, deterministic_only: bool = False) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    deterministic_snapshot = snapshot

    def merge_snapshot(self, obj: dict) -> None:
        pass

    def reset_to(self, obj: dict) -> None:
        pass

    def clear(self) -> None:
        pass


NULL_REGISTRY = NullRegistry()

# Process-wide default registry for callers that want one shared sink
# (the `repro metrics` CLI builds private registries instead; nothing
# records here unless explicitly pointed at it).
GLOBAL_REGISTRY = MetricsRegistry()
