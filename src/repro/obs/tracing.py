"""Span-based tracing with monotonic timings.

A :class:`Span` is a named ``[start_ns, end_ns]`` interval on the
``time.perf_counter_ns`` clock, with children strictly nested inside
it.  Spans are only ever created through :meth:`Tracer.span`, a
context manager, so the tree structure is enforced by scoping: a child
cannot outlive its parent, and every finished span hangs off exactly
one parent (or is a root).  Each thread keeps its own open-span stack,
so worker threads trace independently without interleaving.

Export formats: :meth:`Tracer.to_obj` (JSON-able nested dicts, one per
finished root) and :meth:`Tracer.flame` (an indented flame-style text
tree with durations and percent-of-parent).

The disabled :data:`NULL_TRACER` hands out one shared no-op context
manager — entering it costs an empty function call, no clock read.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field as dc_field


@dataclass
class Span:
    name: str
    start_ns: int
    end_ns: int = 0
    children: list["Span"] = dc_field(default_factory=list)

    @property
    def duration_ns(self) -> int:
        return max(self.end_ns - self.start_ns, 0)

    def to_obj(self) -> dict:
        return {
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "children": [c.to_obj() for c in self.children],
        }


class _SpanContext:
    """The context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "span")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name
        self.span: Span | None = None

    def __enter__(self) -> Span:
        self.span = self._tracer._open(self._name)
        return self.span

    def __exit__(self, *exc) -> None:
        self._tracer._close(self.span)


class Tracer:
    """Collects finished span trees, one open-span stack per thread."""

    enabled = True

    def __init__(self):
        self._lock = threading.RLock()
        self._local = threading.local()
        self.roots: list[Span] = []

    # -- recording ------------------------------------------------------------

    def span(self, name: str) -> _SpanContext:
        return _SpanContext(self, name)

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _open(self, name: str) -> Span:
        span = Span(name, time.perf_counter_ns())
        self._stack().append(span)
        return span

    def _close(self, span: Span) -> None:
        span.end_ns = time.perf_counter_ns()
        stack = self._stack()
        assert stack and stack[-1] is span, "span closed out of order"
        stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    def clear(self) -> None:
        with self._lock:
            self.roots = []

    # -- export ---------------------------------------------------------------

    def to_obj(self) -> list[dict]:
        with self._lock:
            return [root.to_obj() for root in self.roots]

    def flame(self, min_ratio: float = 0.0) -> str:
        """An indented text tree: name, milliseconds, %-of-parent.

        ``min_ratio`` prunes children below that fraction of their
        parent's duration (0 keeps everything).
        """
        lines: list[str] = []

        def walk(span: Span, depth: int, parent_ns: int) -> None:
            share = (span.duration_ns / parent_ns if parent_ns else 1.0)
            if depth and share < min_ratio:
                return
            pct = f" {100 * share:5.1f}%" if depth else ""
            lines.append(f"{'  ' * depth}{span.name:{max(40 - 2 * depth, 8)}s}"
                         f" {span.duration_ns / 1e6:10.3f} ms{pct}")
            for child in span.children:
                walk(child, depth + 1, span.duration_ns)

        with self._lock:
            for root in self.roots:
                walk(root, 0, 0)
        return "\n".join(lines)


# --------------------------------------------------------------------------
# The disabled implementation.
# --------------------------------------------------------------------------

class _NullSpanContext:
    __slots__ = ()
    span = None

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """The disabled tracer: one shared no-op context manager."""

    enabled = False
    roots: list = []

    def span(self, name: str) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def to_obj(self) -> list:
        return []

    def flame(self, min_ratio: float = 0.0) -> str:
        return ""

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
