"""Zero-dependency observability for the CoSplit reproduction.

Two primitives, both off-by-default-cheap:

* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry`
  of counters, gauges and fixed-bucket histograms.  Snapshots are
  plain JSON-able dicts that merge associatively (so per-lane worker
  registries can be folded into the coordinator's in deterministic
  shard order), restore exactly (so durable network snapshots carry
  their telemetry through a crash), and split into a *deterministic*
  subset that doubles as a differential-testing oracle: for fault-free
  runs the deterministic counters must be byte-identical across the
  serial, thread and process executors
  (``tests/test_telemetry_differential.py``).

* :mod:`repro.obs.tracing` — a span-based :class:`Tracer` recording
  nested monotonic timings, exportable as a JSON trace or a
  flame-style text tree.

Disabled instruments (the default everywhere) are shared null objects
whose methods do nothing, so instrumented hot paths cost one attribute
lookup and an empty call — see ``benchmarks/test_obs_overhead.py``
for the enforced bound, and ``docs/OBSERVABILITY.md`` for the metric
catalogue and span hierarchy.
"""

from .metrics import (  # noqa: F401
    GAS_BUCKETS, GLOBAL_REGISTRY, MS_BUCKETS, NS_BUCKETS, NULL_REGISTRY,
    Counter, Gauge, Histogram, MetricsRegistry, NullRegistry,
)
from .tracing import NULL_TRACER, NullTracer, Span, Tracer  # noqa: F401
