"""Isolated shard-lane execution for the parallel epoch executors.

Why lanes may run concurrently at all
-------------------------------------

Signature dispatch guarantees that two transactions routed to
different shard lanes have *disjoint write footprints* on contract
state (the ``Owns`` constraints of Sec. 4.3), that their gas charges
come out of per-lane balance portions (split-balance accounting,
Sec. 4.2.2), and that relaxed nonce checking is per-lane by
construction (Sec. 4.2.1).  Within one epoch, therefore, a lane's
execution depends only on the epoch-start state and on its own queue —
which is what the serial loop in ``Network._attempt_epoch`` implicitly
relies on, and what this module makes explicit.

A :class:`LaneTask` snapshots everything a lane may read (contract
states, account balances, nonce history); :func:`run_lane_task`
rebuilds a private, fully isolated ``Network`` around that snapshot
and executes the queue through the *identical* ``_run_lane`` code path
the serial executor uses; the resulting :class:`LaneResult` carries
the MicroBlock plus the lane's side effects as *deltas* which the DS
committee applies in deterministic shard order.  Because every decision
a lane makes is independent of its siblings (see
``docs/PARALLELISM.md`` for the argument, and
``tests/test_parallel_equivalence.py`` for the differential oracle),
delta-merging in shard order reproduces the serial execution exactly —
byte-identical receipts, stats, and state fingerprints.

The cases where lane independence does NOT hold — strict nonce mode,
or the same ``(sender, nonce)`` submitted to two different lanes — are
detected up front by ``Network._lane_strategy`` and fall back to the
serial loop for that epoch.

Worker-side caching: process-pool tasks ship contract *source text*
rather than AST; each worker rebuilds (and caches, keyed by source
hash) the parsed module and an interpreter per lane, so steady-state
epochs pickle only states, queues and balances.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field as dc_field

from ..core.domain import ConstKey, Key, ParamKey
from ..scilla import types as ty
from ..scilla.ast import Module
from ..scilla.errors import EvalError
from ..scilla.interpreter import Interpreter
from ..scilla.state import ContractState
from ..scilla.values import (
    BNumVal, ByStrVal, IntVal, MapVal, StringVal, Value,
)
from .blocks import MicroBlock
from .delta import StateDelta, compute_delta
from .dispatch import _pad, key_token
from .faults import WorkerKilled
from .transaction import Account, Transaction


@dataclass
class LaneContractPayload:
    """What a worker needs to rebuild one deployed contract."""

    source_hash: str
    source: str                      # "" when the module ships directly
    module: Module | None            # None when the source ships instead
    state: ContractState             # epoch-start state (private copy)
    signature: object | None         # ShardingSignature (carries joins)
    # Slicing plan the state was built under (None = the full state
    # shipped).  Per field: ``None`` means the whole field shipped;
    # a frozenset of first-key tokens means only those top-level map
    # entries (and their subtrees) shipped.  The worker checks every
    # touched location against this plan — a location outside it is a
    # *footprint escape* and discards the whole parallel attempt.
    shipped: dict[str, frozenset[str] | None] | None = None
    # True for contracts none of this lane's transactions target: only
    # the address needs to exist (payment-to-contract rejection and the
    # no-cross-contract-calls check), so an empty state ships.
    stub: bool = False
    # Static transition footprints from deploy-time analysis (None when
    # the contract deployed without a signature).  The speculative
    # scheduler derives its lock sets from these, so workers need them
    # too (repro.chain.speculate).
    footprints: dict | None = None


@dataclass
class LaneTask:
    """One shard lane's slice of an epoch, fully self-contained."""

    lane: int
    epoch: int
    n_shards: int
    use_signatures: bool
    overflow_guard: bool
    gas_limit: int
    queue: list[Transaction]
    contracts: dict[str, LaneContractPayload]
    # Account snapshot: address -> (balance, shard portions).
    accounts: dict[str, tuple[int, dict[int, int]]]
    # Nonce snapshot: full used-sets (replay detection) and this lane's
    # per-lane high-water marks (relaxed ordering).
    nonce_used: dict[str, set[int]]
    nonce_last_lane: dict[str, int]
    # Thread-mode only: per-network interpreter cache, keyed by
    # (lane, source_hash).  Never pickled — process tasks leave it None
    # and use the per-worker module cache instead.
    runtime_cache: dict | None = dc_field(default=None, repr=False)
    # When the owning network records telemetry, the worker records the
    # lane's metrics into a private registry shipped back in the result.
    metrics_enabled: bool = False
    # Chaos injection (repro.chain.supervise): an (action, seconds)
    # pair the worker acts out before executing — "hang"/"slow" sleep,
    # "kill-process" exits the worker process, "kill-thread" raises
    # WorkerKilled.  The supervisor attaches it to first attempts only
    # and never to tasks it runs inline in the coordinator.
    worker_fault: tuple[str, float] | None = None
    # Speculative intra-shard scheduling (repro.chain.speculate): the
    # owning network's toggle and (batch, retries, workers) knobs.  The
    # supervisor clears the toggle on rescue retries so a speculation
    # failure is never replayed speculatively.
    speculate: bool = False
    spec_knobs: tuple[int, int, int] = (8, 3, 0)

    def __getstate__(self):
        state = self.__dict__.copy()
        state["runtime_cache"] = None
        return state


@dataclass
class LaneResult:
    """A lane's MicroBlock plus its side effects, as mergeable deltas."""

    lane: int
    microblock: MicroBlock
    deltas: list[StateDelta]
    balance_deltas: dict[str, int]
    deferred: list[Transaction]
    # address -> (balance delta, portion deltas); addresses the lane
    # created are present even when every delta is zero, so lazily
    # created accounts exist in the merged network exactly as they
    # would after a serial epoch.
    account_deltas: dict[str, tuple[int, dict[int, int]]]
    nonce_used_added: dict[str, set[int]]
    nonce_last_global: dict[str, int]
    nonce_last_lane: dict[str, int]
    # Snapshot of the worker's private registry (None when telemetry is
    # off).  The coordinator folds it in at the same point it applies
    # the lane's other effects, in shard order, so merged counters are
    # identical to what the serial loop records inline.
    metrics: dict | None = None
    # Locations the lane touched outside its shipped slice (sound
    # analysis makes this empty; a non-empty list is defence in depth —
    # the coordinator discards every lane result and redoes the epoch
    # serially, so a slicing bug degrades performance, never results).
    footprint_escapes: list[str] = dc_field(default_factory=list)

    def apply_effects(self, net) -> None:
        """Merge this lane's account/nonce effects into the network.

        Charges and credits are additive and land in per-lane portions,
        so applying lanes in ascending shard order reproduces the
        serial interleaving exactly.
        """
        for addr in sorted(self.account_deltas):
            bal_d, portions_d = self.account_deltas[addr]
            account = net._account(addr)
            account.balance += bal_d
            for shard, d in portions_d.items():
                account.shard_portions[shard] = \
                    account.shard_portions.get(shard, 0) + d
        nonces = net.nonces
        for sender, added in self.nonce_used_added.items():
            nonces.used.setdefault(sender, set()).update(added)
        for sender, value in self.nonce_last_global.items():
            if value > nonces.last_global.get(sender, 0):
                nonces.last_global[sender] = value
        for sender, value in self.nonce_last_lane.items():
            nonces.last_per_lane[(sender, self.lane)] = value
        # Resident replicas must learn these nonce moves at the next
        # sync (account moves are already recorded via net._account).
        tracker = getattr(net, "_resident_tracker", None)
        if tracker is not None:
            for sender in self.nonce_used_added:
                tracker.touch_nonce(sender)
            for sender in self.nonce_last_global:
                tracker.touch_nonce(sender)
            for sender in self.nonce_last_lane:
                tracker.touch_nonce(sender)


# --------------------------------------------------------------------------
# Footprint-sliced payloads (main process).
# --------------------------------------------------------------------------

def transition_footprints(summaries) -> dict[str, tuple | None]:
    """Per-transition state footprints, computed once at deploy time.

    Uses the *raw* analysis summaries (reads ∪ writes), not the
    derived signature constraints — the signature prunes constant-field
    reads and commutative writes, but slicing must cover every location
    a transition may touch.  ``None`` marks an unsummarisable (⊤)
    transition: the analysis cannot bound its accesses, so payloads
    ship the full state whenever one is dispatched.
    """
    out: dict[str, tuple | None] = {}
    for name, summary in summaries.items():
        if summary.has_top:
            out[name] = None
        else:
            pfs = [e.pf for e in summary.reads()]
            pfs += [e.pf for e in summary.writes()]
            out[name] = tuple(dict.fromkeys(pfs))
    return out


def _value_from_token(token: str) -> Value | None:
    """Rebuild a runtime value from a ``key_token`` literal (the
    constant-key format of the analysis).  ADT tokens are not
    round-tripped — the caller falls back to shipping the whole field.
    """
    kind, sep, payload = token.partition("|")
    if not sep:
        return None
    try:
        if kind.startswith(("Int", "Uint")):
            return IntVal(int(payload), ty.PrimType(kind))
        if kind == "String":
            return StringVal(payload)
        if kind.startswith("ByStr"):
            return ByStrVal(payload, ty.PrimType(kind))
        if kind == "BNum":
            return BNumVal(int(payload))
    except (ValueError, EvalError):
        return None
    return None


def _resolve_key_value(key: Key, tx: Transaction,
                       deployed) -> Value | None:
    """The concrete runtime value a symbolic footprint key takes for
    ``tx`` — the same resolution the dispatcher performs for ownership
    constraints (``Dispatcher._resolve_key``), but returning the value
    itself so sliced entries are selected by O(1) dict lookup."""
    if isinstance(key, ParamKey):
        if key.name in ("_sender", "_origin"):
            return ByStrVal(_pad(tx.sender), ty.BYSTR20)
        return tx.args_dict().get(key.name)
    assert isinstance(key, ConstKey)
    if key.repr.startswith("cparam:"):
        return deployed.immutables.get(key.repr.removeprefix("cparam:"))
    if key.repr == "_this_address":
        return ByStrVal(_pad(deployed.address), ty.BYSTR20)
    return _value_from_token(key.repr)


def _payload_plan(net, c, txs: list[Transaction]
                  ) -> dict[str, set[Value] | None] | None:
    """The slicing plan for one contract in one lane: field name →
    ``None`` (ship whole) or the set of first-key values whose
    top-level entries (with their subtrees) must ship.  Fields absent
    from the plan are not needed at all.  Returns ``None`` when the
    whole state must ship (no usable footprints, or a dispatched
    transition is unsummarisable)."""
    if c.footprints is None or c.signature is None \
            or not net.use_signatures:
        return None
    deployed = net.dispatcher.contracts.get(_pad(c.address))
    if deployed is None:
        return None
    plan: dict[str, set[Value] | None] = {}
    for tx in txs:
        pfs = c.footprints.get(tx.transition or "")
        if pfs is None:    # unknown transition or ⊤ summary
            return None
        for pf in pfs:
            if plan.get(pf.field, ()) is None:
                continue   # already shipping the whole field
            if pf.is_whole_field:
                plan[pf.field] = None
                continue
            value = _resolve_key_value(pf.keys[0], tx, deployed)
            if value is None:
                plan[pf.field] = None    # unresolvable: be conservative
            else:
                plan.setdefault(pf.field, set()).add(value)
    return plan


def _sliced_state(state: ContractState,
                  plan: dict[str, set[Value] | None]
                  ) -> tuple[ContractState, dict[str, frozenset[str] | None],
                             int]:
    """Build the payload state for a plan, plus the ``shipped`` spec
    the worker checks escapes against and the count of shipped map
    entries.  Non-map fields always ship whole (they are one value);
    map fields ship fully (CoW fork), sliced to the planned first-key
    entries, or empty when no dispatched transition names them."""
    fields: dict[str, Value] = {}
    shipped: dict[str, frozenset[str] | None] = {}
    entries = 0
    for name, value in state.fields.items():
        if not isinstance(value, MapVal):
            fields[name] = value
            shipped[name] = None
            continue
        keys = plan.get(name, set())
        if keys is None:
            fields[name] = value.copy()
            shipped[name] = None
            entries += len(value.entries)
            continue
        try:
            tokens = frozenset(key_token(k) for k in keys)
        except ValueError:
            fields[name] = value.copy()
            shipped[name] = None
            entries += len(value.entries)
            continue
        sub = MapVal(value.key_type, value.value_type)
        prefetch = getattr(value.entries, "prefetch", None)
        if prefetch is not None:
            # Paged field: batch-fault the lane's whole footprint in
            # one backend round-trip before the per-key lookups below
            # (the slicing plan doubles as the prefetch oracle).
            prefetch(keys)
        for k in keys:
            v = value.entries.get(k)
            if v is not None:
                sub.entries[k] = v.copy() if isinstance(v, MapVal) else v
                entries += 1
        fields[name] = sub
        shipped[name] = tokens
    sliced = ContractState(state.address, fields, state.field_types,
                           state.immutables, state.balance)
    return sliced, shipped, entries


def _stub_state(c) -> ContractState:
    return ContractState(c.state.address, {}, c.state.field_types,
                         c.state.immutables, 0)


def _full_entries(state: ContractState) -> int:
    return sum(len(v.entries) for v in state.fields.values()
               if isinstance(v, MapVal))


# --------------------------------------------------------------------------
# Task construction (main process).
# --------------------------------------------------------------------------

def source_hash(source: str) -> str:
    return hashlib.sha256(source.encode()).hexdigest()


def build_lane_task(net, lane: int, queue: list[Transaction],
                    gas_limit: int, ship_modules: bool) -> LaneTask:
    """Snapshot the network into a self-contained lane task.

    ``ship_modules=True`` (thread executor) shares the live AST and
    the network's per-lane interpreter cache; ``False`` (process
    executor) ships source text and lets the worker's own cache
    rebuild the runtime.  Contract states are private CoW forks; with
    ``net.slice_payloads`` they are *sliced* down to the components the
    lane's dispatched footprints name (stubs for contracts the lane
    never targets), so steady-state payload size tracks activity, not
    state size.
    """
    meters = net._meters if net.metrics.enabled else None
    targeted: dict[str, list[Transaction]] = {}
    for tx in queue:
        if tx.is_contract_call:
            targeted.setdefault(_pad(tx.to), []).append(tx)
    contracts: dict[str, LaneContractPayload] = {}
    for addr, c in net.contracts.items():
        src = getattr(c, "source", "")
        payload = LaneContractPayload(
            source_hash=source_hash(src) if src else f"module:{id(c.module)}",
            source="" if (ship_modules or not src) else src,
            module=c.module if (ship_modules or not src) else None,
            state=c.state,                  # placeholder, replaced below
            signature=c.signature,
            footprints=c.footprints,
        )
        txs = targeted.get(addr)
        plan = None
        if net.slice_payloads and txs is None:
            payload.state = _stub_state(c)
            payload.stub = True
            payload.source = ""
            payload.module = None
            if meters:
                meters.payload_states_stub.inc()
        elif net.slice_payloads and \
                (plan := _payload_plan(net, c, txs)) is not None:
            payload.state, payload.shipped, n = _sliced_state(c.state, plan)
            if meters:
                meters.payload_states_sliced.inc()
                meters.payload_entries.inc(n)
        else:
            payload.state = c.state.fork()
            if meters:
                meters.payload_states_full.inc()
                meters.payload_entries.inc(_full_entries(c.state))
        contracts[addr] = payload
    accounts = {addr: (acc.balance, dict(acc.shard_portions))
                for addr, acc in net.accounts.items()}
    nonce_used = {s: set(v) for s, v in net.nonces.used.items()}
    nonce_last_lane = {s: v for (s, l), v in net.nonces.last_per_lane.items()
                       if l == lane}
    return LaneTask(
        lane=lane, epoch=net.epoch, n_shards=net.n_shards,
        use_signatures=net.use_signatures,
        overflow_guard=net.overflow_guard, gas_limit=gas_limit,
        queue=queue, contracts=contracts, accounts=accounts,
        nonce_used=nonce_used, nonce_last_lane=nonce_last_lane,
        runtime_cache=net._runtime_cache if ship_modules else None,
        metrics_enabled=net.metrics.enabled,
        speculate=net.speculate,
        spec_knobs=(net.spec_batch, net.spec_retries, net.spec_workers),
    )


# --------------------------------------------------------------------------
# Task execution (worker side; also runs in-process for threads).
# --------------------------------------------------------------------------

# Per-worker-process runtime cache: (lane, source_hash) -> (module,
# interpreter).  Keyed by lane as well so two *thread* tasks of one
# epoch never share an interpreter (run_transition installs a gas hook
# on the instance); process workers execute one task at a time, so for
# them the lane key only costs a few duplicate 40µs constructions.
_worker_runtime_cache: dict[tuple[int, str], tuple[Module, Interpreter]] = {}


def _runtime_for(lane: int, payload: LaneContractPayload,
                 cache: dict | None) -> tuple[Module, Interpreter]:
    cache = _worker_runtime_cache if cache is None else cache
    key = (lane, payload.source_hash)
    hit = cache.get(key)
    if hit is not None and (payload.module is None
                            or hit[0] is payload.module):
        return hit
    module = payload.module
    if module is None:
        from ..scilla.parser import parse_module
        from ..scilla.typechecker import typecheck_module
        module = parse_module(payload.source, "<lane>")
        typecheck_module(module)
    runtime = (module, Interpreter(module))
    cache[key] = runtime
    return runtime


def _footprint_escapes(task: LaneTask,
                       touched: dict[str, set]) -> list[str]:
    """Touched locations outside the shipped slice (writes of
    successful transactions; reads are covered by the same footprints
    by construction — the plan ships ``reads ∪ writes``)."""
    escapes: list[str] = []
    for addr, keys in touched.items():
        shipped = task.contracts[addr].shipped
        if shipped is None:
            continue
        for name, path in keys:
            spec = shipped.get(name)
            if name not in shipped:
                escapes.append(f"{addr}: write to unshipped field "
                               f"{name!r}")
            elif spec is None:
                continue
            elif not path:
                escapes.append(f"{addr}: whole-field write to sliced "
                               f"field {name!r}")
            else:
                try:
                    token = key_token(path[0])
                except ValueError:
                    token = None
                if token is None or token not in spec:
                    escapes.append(f"{addr}: write to {name!r} outside "
                                   f"the shipped slice ({path[0]})")
    return escapes


def instantiate_lane_network(task: LaneTask, registry=None):
    """Rebuild a private, fully isolated ``Network`` from a task
    snapshot — the worker-side half of :func:`build_lane_task`.

    Shared by the per-epoch executor (:func:`run_lane_task`) and the
    resident-replica install path (:mod:`repro.chain.resident`), so a
    replica starts from *exactly* the state a one-shot worker would
    have seen.
    """
    from .network import DeployedContract, Network

    # state_backend="none": lane payload states are already private
    # slices/forks of the coordinator's (possibly paged) state; the
    # private network must never resolve REPRO_STATE_BACKEND and spin
    # up its own page store per lane.
    net = Network(task.n_shards, use_signatures=task.use_signatures,
                  overflow_guard=task.overflow_guard, executor="serial",
                  metrics=registry, speculate=task.speculate,
                  state_backend="none")
    net.spec_batch, net.spec_retries, net.spec_workers = task.spec_knobs
    net.epoch = task.epoch
    for addr, payload in task.contracts.items():
        if payload.stub:
            # Only the address must exist (payment-to-contract and
            # cross-contract-call checks); the lane never invokes it.
            net.contracts[addr] = DeployedContract(
                addr, None, None, payload.state, payload.signature,
                footprints=payload.footprints)
            continue
        module, interp = _runtime_for(task.lane, payload,
                                      task.runtime_cache)
        net.contracts[addr] = DeployedContract(
            addr, module, interp, payload.state, payload.signature,
            footprints=payload.footprints)
    net.accounts = {
        addr: Account(addr, balance, dict(portions))
        for addr, (balance, portions) in task.accounts.items()}
    net.nonces.used = {s: set(v) for s, v in task.nonce_used.items()}
    net.nonces.last_per_lane = {
        (s, task.lane): v for s, v in task.nonce_last_lane.items()}
    return net


def run_lane_task(task: LaneTask) -> LaneResult:
    """Execute one lane in complete isolation.

    Builds a private Network holding only copies of the task snapshot
    and runs the ordinary sequential ``_run_lane`` over the queue, so
    the execution semantics are *the same code* as the serial
    executor's — parallelism changes scheduling, never meaning.
    """
    from ..obs.metrics import MetricsRegistry

    if task.worker_fault is not None:
        action, seconds = task.worker_fault
        if action == "kill-process":
            os._exit(13)
        if action == "kill-thread":
            raise WorkerKilled(
                f"lane {task.lane}: injected worker kill")
        time.sleep(seconds)   # "hang" (past deadline) / "slow" (within)

    registry = MetricsRegistry() if task.metrics_enabled else None
    net = instantiate_lane_network(task, registry)

    mb, local_states, touched, deferred = net._run_lane(
        task.lane, task.queue, task.gas_limit)

    escapes = _footprint_escapes(task, touched)
    if escapes:
        # The lane ran against an incomplete slice, so nothing it
        # produced can be trusted.  Report the escapes; the coordinator
        # discards every lane result and redoes the epoch serially.
        return LaneResult(
            lane=task.lane, microblock=mb, deltas=[], balance_deltas={},
            deferred=[], account_deltas={}, nonce_used_added={},
            nonce_last_global={}, nonce_last_lane={},
            footprint_escapes=escapes)

    deltas: list[StateDelta] = []
    balance_deltas: dict[str, int] = {}
    for addr, local in local_states.items():
        base = net.contracts[addr].state
        delta = compute_delta(addr, task.lane, base, local,
                              touched.get(addr, set()),
                              net.contracts[addr].joins)
        if delta.entries:
            deltas.append(delta)
        balance_deltas[addr] = local.balance - base.balance

    account_deltas: dict[str, tuple[int, dict[int, int]]] = {}
    for addr, account in net.accounts.items():
        pre = task.accounts.get(addr)
        pre_balance, pre_portions = pre if pre is not None else (0, {})
        bal_d = account.balance - pre_balance
        portions_d = {
            shard: d for shard in
            set(account.shard_portions) | set(pre_portions)
            if (d := account.shard_portions.get(shard, 0)
                - pre_portions.get(shard, 0))}
        if bal_d or portions_d or pre is None:
            account_deltas[addr] = (bal_d, portions_d)

    nonce_used_added = {}
    for sender, values in net.nonces.used.items():
        base = task.nonce_used.get(sender)
        added = values - base if base is not None else set(values)
        if added:
            nonce_used_added[sender] = added
    nonce_last_lane = {s: v for (s, l), v in net.nonces.last_per_lane.items()
                       if l == task.lane and task.nonce_last_lane.get(s) != v}

    return LaneResult(
        lane=task.lane, microblock=mb, deltas=deltas,
        balance_deltas=balance_deltas, deferred=deferred,
        account_deltas=account_deltas,
        nonce_used_added=nonce_used_added,
        nonce_last_global=dict(net.nonces.last_global),
        nonce_last_lane=nonce_last_lane,
        metrics=registry.snapshot() if registry is not None else None,
    )


# --------------------------------------------------------------------------
# Scheduling (main process).
# --------------------------------------------------------------------------

def run_lanes(net, lanes: list[tuple[int, list[Transaction]]],
              gas_limit: int, strategy: str
              ) -> dict[int, LaneResult] | None:
    """Run the given (shard, queue) lanes under the chosen executor.

    Dispatch is delegated to the network's persistent lane supervisor
    (:mod:`repro.chain.supervise`): per-lane futures under a deadline,
    a hung-worker watchdog, per-lane retry with backoff, and the
    executor circuit-breaker ladder.  A failing lane is retried or
    re-executed serially *inside* the supervisor while its siblings
    keep their results; ``None`` comes back only when the whole epoch
    must fall back to the caller's serial loop (breaker ladder
    bottomed out, or an unrecoverable coordinator-side error) — and
    since nothing has been mutated yet, that fallback is transparent
    and the results are identical either way.
    """
    return net.supervisor.run(net, lanes, gas_limit, strategy)
