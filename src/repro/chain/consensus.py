"""Timing model for the simulated network (substitute for EC2 testbed).

The paper measures wall-clock throughput on t2.medium machines running
PBFT inside each shard.  We replace the testbed with a deterministic
cost model: transaction execution is priced in gas units converted to
seconds at a fixed node speed, PBFT consensus contributes a base
latency quadratic in committee size (its message complexity), and the
DS committee adds per-location merge cost.  Absolute constants are
calibrated so the baseline sits near the paper's ~100 TPS scale; the
*shape* of the results (who scales, who saturates) is independent of
the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """All tunables of the simulated network in one place."""

    # Execution speed of a validator, in gas units per second.
    gas_per_second: float = 25_000.0
    # PBFT round latency: base plus quadratic message cost.
    consensus_base_s: float = 8.0
    consensus_per_node2_s: float = 0.02
    # Cost to apply one changed state location during the FSD merge.
    merge_per_location_s: float = 50e-6
    # Per-transaction dispatch cost at the lookup nodes.
    dispatch_signature_s: float = 475e-6   # with CoSplit (Sec. 5.2.2)
    dispatch_default_s: float = 8e-6       # plain Zilliqa
    # Gas limits per epoch (mirroring mainnet shard/DS limits).
    shard_gas_limit: int = 700_000
    ds_gas_limit: int = 700_000
    # How long the DS committee waits for a shard's MicroBlock before
    # declaring the shard failed and starting recovery (view change).
    # Every crashed / delayed / byzantine lane costs one full timeout.
    microblock_timeout_s: float = 12.0

    def exec_seconds(self, gas: int) -> float:
        return gas / self.gas_per_second

    def consensus_seconds(self, committee_size: int) -> float:
        return (self.consensus_base_s
                + self.consensus_per_node2_s * committee_size ** 2)

    def epoch_seconds(self, shard_exec: list[float], ds_exec: float,
                      merged_locations: int, shard_size: int,
                      ds_size: int, n_dispatched: int,
                      with_cosplit: bool, timeouts: int = 0) -> float:
        """Total epoch wall time.

        Shards run in parallel (max), then the DS committee merges
        deltas and processes its own transactions, then final
        consensus.  Dispatch happens at lookup nodes concurrently with
        nothing else, so it adds per-transaction cost up front.

        ``timeouts`` is the number of shard lanes whose MicroBlock the
        DS committee waited out this epoch (crashed, delayed past the
        consensus timeout, or rejected as byzantine).  Recovery is not
        free: each such lane stalls the epoch for one full
        ``microblock_timeout_s`` before its transactions are
        re-executed on the DS lane.
        """
        dispatch_cost = n_dispatched * (
            self.dispatch_signature_s if with_cosplit
            else self.dispatch_default_s)
        shard_phase = (max(shard_exec) if shard_exec else 0.0) + \
            self.consensus_seconds(shard_size)
        merge_phase = merged_locations * self.merge_per_location_s
        ds_phase = ds_exec + self.consensus_seconds(ds_size)
        recovery_phase = timeouts * self.microblock_timeout_s
        return (dispatch_cost + shard_phase + merge_phase + ds_phase
                + recovery_phase)


DEFAULT_COST_MODEL = CostModel()
