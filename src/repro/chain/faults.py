"""Deterministic fault injection for the sharded network simulator.

The paper's guarantees — signature-routed transactions commute, the
FSD merge is deterministic — are only worth reproducing if they
survive the failures a real sharded chain sees (Zilliqa's testbed had
crashing and lagging shard nodes; Chainspace assumes outright
byzantine shards).  This module provides the *attack side* of that
story; :mod:`repro.chain.recovery` provides the safety nets.

Everything here is seeded and deterministic: a :class:`FaultPlan` is a
pure function of its seed, and every tampering decision derives its
RNG from ``(seed, epoch, shard)``, so two runs with the same plan
inject byte-identical faults regardless of what else the process did.

Fault taxonomy
--------------

Shard-lane faults (the lane is excluded and its queue re-executed on
the DS lane — see ``docs/FAULTS.md``):

* ``CRASH_SHARD``      — the shard dies before producing a MicroBlock.
* ``DELAY_MICROBLOCK`` — the MicroBlock arrives after the consensus
  timeout; the DS committee has already started a view change.
* ``DROP_MICROBLOCK``  — the MicroBlock is lost in transit.
* ``CORRUPT_DELTA``    — a bit-flip re-keys one of the shard's
  StateDelta entries to a location outside its ownership footprint.
* ``FORGE_DELTA``      — a byzantine shard fabricates a delta entry
  (foreign-owned key, or a join kind that contradicts the deployed
  signature).

Mempool churn (changes the submitted workload, so it is excluded from
fault/no-fault equivalence checks):

* ``DROP_TX`` / ``DUPLICATE_TX`` / ``REORDER_TXNS``.

Corruptions are *detectable by construction*: the injector only
applies a tampering if the validator the network hands it rejects the
result.  A planned corruption that cannot be made detectable (e.g. the
lane produced no delta to corrupt) is skipped and logged — it never
silently poisons the merge.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field as dc_field, replace

from ..core.joins import JoinKind
from ..scilla.values import (
    BNumVal, ByStrVal, IntVal, StringVal, Value, uint,
)
from .delta import DeltaEntry, StateDelta
from .transaction import Transaction


class FaultKind(enum.Enum):
    CRASH_SHARD = "crash-shard"
    DELAY_MICROBLOCK = "delay-microblock"
    DROP_MICROBLOCK = "drop-microblock"
    CORRUPT_DELTA = "corrupt-delta"
    FORGE_DELTA = "forge-delta"
    DROP_TX = "drop-tx"
    DUPLICATE_TX = "duplicate-tx"
    REORDER_TXNS = "reorder-txns"
    HANG_WORKER = "hang-worker"
    KILL_WORKER = "kill-worker"
    SLOW_LANE = "slow-lane"
    FLOOD = "flood"
    STALL_CONSUMER = "stall-consumer"

    def __str__(self) -> str:
        return self.value


class WorkerKilled(RuntimeError):
    """An injected ``KILL_WORKER`` fault firing inside a thread-pool
    worker, where a process-style ``os._exit`` would take the whole
    coordinator down.  The supervisor classifies it as worker death."""


# Lane-level kinds: discovered by the DS committee as a missing
# MicroBlock (timeout) ...
MICROBLOCK_FAULTS = frozenset({
    FaultKind.DELAY_MICROBLOCK, FaultKind.DROP_MICROBLOCK,
})
# ... or as an invalid StateDelta (byzantine).
DELTA_FAULTS = frozenset({
    FaultKind.CORRUPT_DELTA, FaultKind.FORGE_DELTA,
})
# Mempool-level kinds: alter the submitted transaction stream.
CHURN_FAULTS = frozenset({
    FaultKind.DROP_TX, FaultKind.DUPLICATE_TX, FaultKind.REORDER_TXNS,
})
# Executor-infrastructure kinds: the lane's *worker* misbehaves (hangs
# past the deadline, dies mid-task, or merely lags) while the lane's
# inputs stay valid.  Handled below the protocol by the lane
# supervisor (repro.chain.supervise), which retries or reruns the lane
# from its immutable snapshot — the DS committee never sees them.
WORKER_FAULTS = frozenset({
    FaultKind.HANG_WORKER, FaultKind.KILL_WORKER, FaultKind.SLOW_LANE,
})
# Service-level kinds: attack the *ingestion* path, not the epoch
# pipeline.  ``FLOOD`` multiplies the offered load for one tick;
# ``STALL_CONSUMER`` freezes the service loop's drain for one tick
# (producers keep submitting).  Keyed by service tick, not network
# epoch — a stalled tick processes no epoch.  Handled entirely by
# repro.chain.service: admission control sheds the excess and the
# committed stream stays replay-equivalent, but the *set* of committed
# transactions legitimately changes, so these are not in
# EQUIVALENCE_PRESERVING.
SERVICE_FAULTS = frozenset({
    FaultKind.FLOOD, FaultKind.STALL_CONSUMER,
})
# Kinds for which recovery guarantees fault/no-fault end-state
# equivalence on signature-routed workloads.
EQUIVALENCE_PRESERVING = frozenset({
    FaultKind.CRASH_SHARD, FaultKind.DELAY_MICROBLOCK,
    FaultKind.DROP_MICROBLOCK, FaultKind.CORRUPT_DELTA,
    FaultKind.FORGE_DELTA,
}) | WORKER_FAULTS


@dataclass(frozen=True)
class FaultEvent:
    """One planned fault.  ``shard`` is ``None`` for mempool churn."""

    epoch: int
    kind: FaultKind
    shard: int | None = None

    def __str__(self) -> str:
        where = f" shard {self.shard}" if self.shard is not None else ""
        return f"epoch {self.epoch}{where}: {self.kind}"


class FaultPlan:
    """A deterministic schedule of faults, keyed by epoch.

    Build one explicitly from :class:`FaultEvent` objects, or generate
    one with :meth:`FaultPlan.random` — the latter is a pure function
    of its arguments, so the same seed always yields the same plan.
    """

    def __init__(self, events: list[FaultEvent] | tuple[FaultEvent, ...] = (),
                 seed: int = 0):
        self.seed = seed
        self.events: tuple[FaultEvent, ...] = tuple(sorted(
            events, key=lambda e: (e.epoch, e.kind.value,
                                   -1 if e.shard is None else e.shard)))
        self._by_epoch: dict[int, list[FaultEvent]] = {}
        for event in self.events:
            self._by_epoch.setdefault(event.epoch, []).append(event)

    @classmethod
    def random(cls, seed: int, epochs: int, n_shards: int,
               crash_rate: float = 0.12, delay_rate: float = 0.08,
               drop_rate: float = 0.05, corrupt_rate: float = 0.08,
               forge_rate: float = 0.05, churn_rate: float = 0.0,
               first_epoch: int = 1, hang_rate: float = 0.0,
               kill_rate: float = 0.0, slow_rate: float = 0.0,
               flood_rate: float = 0.0,
               stall_rate: float = 0.0) -> "FaultPlan":
        """Sample at most one lane fault per (epoch, shard).

        A single uniform draw per cell is partitioned by the rates, so
        the plan is stable under rate-preserving refactors and never
        schedules two contradictory faults for the same lane.  Worker
        faults partition the *tail* of the draw (after the protocol
        kinds), so a plan generated before they existed is reproduced
        byte-identically when their rates are zero.
        """
        rng = random.Random(seed)
        lane_kinds = (
            (FaultKind.CRASH_SHARD, crash_rate),
            (FaultKind.DELAY_MICROBLOCK, delay_rate),
            (FaultKind.DROP_MICROBLOCK, drop_rate),
            (FaultKind.CORRUPT_DELTA, corrupt_rate),
            (FaultKind.FORGE_DELTA, forge_rate),
            (FaultKind.HANG_WORKER, hang_rate),
            (FaultKind.KILL_WORKER, kill_rate),
            (FaultKind.SLOW_LANE, slow_rate),
        )
        events: list[FaultEvent] = []
        for epoch in range(first_epoch, first_epoch + epochs):
            for shard in range(n_shards):
                draw = rng.random()
                for kind, rate in lane_kinds:
                    if draw < rate:
                        events.append(FaultEvent(epoch, kind, shard))
                        break
                    draw -= rate
            for kind in (FaultKind.DROP_TX, FaultKind.DUPLICATE_TX,
                         FaultKind.REORDER_TXNS):
                if rng.random() < churn_rate:
                    events.append(FaultEvent(epoch, kind))
            # Service faults draw only when enabled, so plans generated
            # before they existed are reproduced byte-identically from
            # the same seed when their rates are zero (unlike churn,
            # whose draws predate this rule and stay unconditional).
            for kind, rate in ((FaultKind.FLOOD, flood_rate),
                               (FaultKind.STALL_CONSUMER, stall_rate)):
                if rate > 0 and rng.random() < rate:
                    events.append(FaultEvent(epoch, kind))
        return cls(events, seed=seed)

    # -- wire format (the WAL's init record persists the plan) -----------------

    def to_obj(self):
        """JSON-able form; together with the seed this reconstructs
        the plan exactly, including explicitly-built ones."""
        return {
            "seed": self.seed,
            "events": [{"epoch": e.epoch, "kind": e.kind.value,
                        "shard": e.shard} for e in self.events],
        }

    @classmethod
    def from_obj(cls, data) -> "FaultPlan":
        return cls([FaultEvent(e["epoch"], FaultKind(e["kind"]),
                               e["shard"]) for e in data["events"]],
                   seed=data["seed"])

    # -- queries ---------------------------------------------------------------

    def events_for(self, epoch: int) -> list[FaultEvent]:
        return list(self._by_epoch.get(epoch, ()))

    def lane_faults(self, epoch: int,
                    kinds: frozenset[FaultKind]) -> dict[int, FaultKind]:
        out: dict[int, FaultKind] = {}
        for event in self._by_epoch.get(epoch, ()):
            if event.kind in kinds and event.shard is not None:
                out.setdefault(event.shard, event.kind)
        return out

    @property
    def equivalence_preserving(self) -> bool:
        """True iff recovery guarantees the fault-free end state."""
        return all(e.kind in EQUIVALENCE_PRESERVING for e in self.events)

    def describe(self) -> str:
        if not self.events:
            return "(no faults planned)"
        return "\n".join(str(e) for e in self.events)

    def __len__(self) -> int:
        return len(self.events)


# --------------------------------------------------------------------------
# Key perturbation: derive a *different* map key of the same type, so a
# corrupted entry lands in (usually) another shard's footprint.
# --------------------------------------------------------------------------

def _perturb_key(value: Value, step: int) -> Value | None:
    if isinstance(value, IntVal):
        return IntVal(value.value + step + 1, value.typ)
    if isinstance(value, StringVal):
        return StringVal(value.value + "\x00" * (step + 1))
    if isinstance(value, ByStrVal):
        body = value.hex[2:] if value.hex.startswith("0x") else value.hex
        width = len(body)
        flipped = (int(body, 16) + step + 1) % (16 ** width)
        return ByStrVal("0x" + format(flipped, f"0{width}x"), value.typ)
    if isinstance(value, BNumVal):
        return BNumVal(value.value + step + 1)
    return None  # ADT / map keys: no safe generic perturbation


class FaultInjector:
    """Applies a :class:`FaultPlan` to a running network.

    The network consults the injector at three points of an epoch:
    mempool churn before dispatch, lane faults after the shard phase,
    and delta tampering before the DS validates/merges.  The injector
    records everything it did (or skipped) in ``log``.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.log: list[str] = []
        self.dropped: list[Transaction] = []
        self.injected = 0
        self.skipped = 0

    def _rng(self, epoch: int, salt: int) -> random.Random:
        return random.Random(self.plan.seed * 1_000_003
                             + epoch * 8191 + salt)

    # -- lane faults -----------------------------------------------------------

    def crashed_shards(self, epoch: int) -> list[int]:
        return sorted(self.plan.lane_faults(
            epoch, frozenset({FaultKind.CRASH_SHARD})))

    def microblock_faults(self, epoch: int) -> dict[int, FaultKind]:
        return self.plan.lane_faults(epoch, MICROBLOCK_FAULTS)

    def delta_faults(self, epoch: int) -> dict[int, FaultKind]:
        return self.plan.lane_faults(epoch, DELTA_FAULTS)

    def worker_faults(self, epoch: int) -> dict[int, FaultKind]:
        """Executor-level faults the lane supervisor injects into the
        worker running each shard's task (repro.chain.supervise)."""
        return self.plan.lane_faults(epoch, WORKER_FAULTS)

    # -- service faults (consulted by repro.chain.service, per tick) -----------

    def consumer_stalled(self, tick: int) -> bool:
        """True if the service loop must skip draining this tick."""
        return any(e.kind is FaultKind.STALL_CONSUMER
                   for e in self.plan.events_for(tick))

    def flood_multiplier(self, tick: int) -> int:
        """Load multiplier for this tick: 1 normally, 2–4 (seeded,
        deterministic) when a FLOOD event is planned."""
        if not any(e.kind is FaultKind.FLOOD
                   for e in self.plan.events_for(tick)):
            return 1
        return self._rng(tick, salt=-13).randint(2, 4)

    # -- mempool churn ---------------------------------------------------------

    def churn_mempool(self, epoch: int, txns: list[Transaction],
                      log: list[str]) -> list[Transaction]:
        """Drop, duplicate, or reorder the epoch's submissions."""
        events = [e for e in self.plan.events_for(epoch)
                  if e.kind in CHURN_FAULTS]
        if not events:
            return txns
        out = list(txns)
        rng = self._rng(epoch, salt=-7)
        for event in events:
            if event.kind is FaultKind.DROP_TX and out:
                victim = out.pop(rng.randrange(len(out)))
                self.dropped.append(victim)
                self._note(log, f"epoch {epoch}: mempool dropped a "
                                f"transaction from {victim.sender} "
                                f"(nonce {victim.nonce})")
            elif event.kind is FaultKind.DUPLICATE_TX and out:
                victim = out[rng.randrange(len(out))]
                out.append(victim)
                self._note(log, f"epoch {epoch}: mempool duplicated a "
                                f"transaction from {victim.sender} "
                                f"(nonce {victim.nonce})")
            elif event.kind is FaultKind.REORDER_TXNS and len(out) > 1:
                rng.shuffle(out)
                self._note(log, f"epoch {epoch}: mempool reordered "
                                f"{len(out)} transactions")
        return out

    # -- delta tampering -------------------------------------------------------

    def tamper_deltas(self, epoch: int, shard: int, kind: FaultKind,
                      lane_deltas: list[StateDelta], net,
                      validator, log: list[str]) -> bool:
        """Corrupt or forge the lane's deltas, *detectably*.

        ``validator`` is the same delta-footprint check the DS
        committee runs (see :func:`repro.chain.recovery.validate_delta`
        wrapped by the network); a candidate corruption is only applied
        if the validator rejects it, so injected byzantine behaviour
        can never slip past the safety net into the merge.  Returns
        whether a tampering was applied.
        """
        for preview, apply, where in self._corruption_candidates(
                shard, kind, lane_deltas, net):
            if validator(preview) is None:
                continue  # undetectable — keep searching
            apply()
            self.injected += 1
            self._note(log, f"epoch {epoch}: shard {shard} {kind} "
                            f"on {where}")
            return True
        self.skipped += 1
        self._note(log, f"epoch {epoch}: shard {shard} {kind} skipped "
                        f"(no detectable corruption available)")
        return False

    def _corruption_candidates(self, shard: int, kind: FaultKind,
                               lane_deltas: list[StateDelta], net):
        """Yield ``(preview, apply, description)`` candidates in a
        deterministic order: foreign re-keys first, then join-kind
        forgeries, then fabricated whole-field writes.  ``preview`` is
        a fresh StateDelta showing the post-tamper result; ``apply``
        installs it into the lane's deltas for real."""
        corrupt = kind is FaultKind.CORRUPT_DELTA
        for delta in lane_deltas:
            for index, entry in enumerate(delta.entries):
                field, keys = entry.key
                bads: list[DeltaEntry] = []
                if keys:
                    for step in range(4):
                        perturbed = _perturb_key(keys[0], step)
                        if perturbed is None:
                            break
                        bads.append(replace(
                            entry, key=(field, (perturbed,) + keys[1:])))
                # Join-kind forgery: claim the opposite merge semantics.
                bads.append(self._flip_kind(entry))
                for bad in bads:
                    entries = list(delta.entries)
                    if corrupt:
                        entries[index] = bad
                    else:
                        entries.append(bad)
                    preview = StateDelta(delta.contract, delta.shard,
                                         entries)
                    yield (preview,
                           self._installer(delta, entries),
                           f"{field!r} of {delta.contract}")
        # Nothing to corrupt in place: fabricate a whole-field write.
        for address in sorted(net.contracts):
            state = net.contracts[address].state
            for name in sorted(state.field_types):
                value = state.fields.get(name)
                if value is None:
                    continue
                forged = StateDelta(address, shard, [DeltaEntry(
                    (name, ()), JoinKind.OWN_OVERWRITE,
                    new_value=value)])
                yield (forged, lambda f=forged: lane_deltas.append(f),
                       f"fabricated {name!r} of {address}")

    @staticmethod
    def _installer(delta: StateDelta, entries: list[DeltaEntry]):
        def apply():
            delta.entries[:] = entries
        return apply

    @staticmethod
    def _flip_kind(entry: DeltaEntry) -> DeltaEntry:
        if entry.kind is JoinKind.INT_MERGE:
            new_value = (entry.template if entry.template is not None
                         else uint(max(entry.int_diff, 0)))
            return DeltaEntry(entry.key, JoinKind.OWN_OVERWRITE,
                              new_value=new_value)
        template = (entry.new_value
                    if isinstance(entry.new_value, IntVal)
                    else uint(1))
        return DeltaEntry(entry.key, JoinKind.INT_MERGE, int_diff=1,
                          template=template)

    def _note(self, log: list[str], line: str) -> None:
        self.log.append(line)
        log.append(line)
