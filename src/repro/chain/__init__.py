"""Sharded blockchain substrate: the paper's execution environment.

Implements the Zilliqa-style architecture of Sec. 4 — lookup-node
dispatch, shards, DS committee, MicroBlocks/StateDeltas/FinalBlocks —
as a deterministic simulator that really executes every transaction
through the Scilla interpreter.
"""

from .blocks import FinalBlock, MicroBlock, Receipt
from .consensus import CostModel, DEFAULT_COST_MODEL
from .delta import DeltaEntry, StateDelta, compute_delta, merge_deltas
from .dispatch import (
    DS, DeployedSignature, DispatchDecision, Dispatcher, key_token,
    shard_hash,
)
from .faults import (
    FaultEvent, FaultInjector, FaultKind, FaultPlan,
)
from .lanes import LaneResult, LaneTask, build_lane_task, run_lane_task
from .lookup import LookupNode, TxPacket, packets_to_epoch
from .network import (
    BacklogEntry, DeployedContract, EpochStats, EXECUTOR_STRATEGIES,
    Network,
)
from .recovery import (
    DeltaViolation, NetworkCheckpoint, fingerprint_digest,
    network_fingerprint, state_fingerprint, validate_delta,
)
from .store import (
    SnapshotError, SnapshotStore, network_from_snapshot,
    snapshot_network,
)
from .transaction import (
    Account, NonceTracker, Transaction, call, payment,
)
from .wal import (
    FSYNC_POLICIES, WALCorruption, WALError, WALRecord, WriteAheadLog,
    read_wal,
)

__all__ = [
    "FinalBlock", "MicroBlock", "Receipt",
    "CostModel", "DEFAULT_COST_MODEL",
    "DeltaEntry", "StateDelta", "compute_delta", "merge_deltas",
    "DS", "DeployedSignature", "DispatchDecision", "Dispatcher",
    "key_token", "shard_hash",
    "FaultEvent", "FaultInjector", "FaultKind", "FaultPlan",
    "LaneResult", "LaneTask", "build_lane_task", "run_lane_task",
    "LookupNode", "TxPacket", "packets_to_epoch",
    "BacklogEntry", "DeployedContract", "EpochStats",
    "EXECUTOR_STRATEGIES", "Network",
    "DeltaViolation", "NetworkCheckpoint", "fingerprint_digest",
    "network_fingerprint", "state_fingerprint", "validate_delta",
    "SnapshotError", "SnapshotStore", "network_from_snapshot",
    "snapshot_network",
    "Account", "NonceTracker", "Transaction", "call", "payment",
    "FSYNC_POLICIES", "WALCorruption", "WALError", "WALRecord",
    "WriteAheadLog", "read_wal",
]
