"""Persistent (resident) shard-lane workers.

The per-epoch executors in :mod:`repro.chain.lanes` rebuild a worker
snapshot from scratch every epoch: a full account table, the whole
nonce history, and (sliced) contract states are copied, pickled and
shipped per lane per epoch.  The paper's testbed — like Chainspace's
long-lived shard nodes — does none of that: a shard *holds* its state
and only learns what changed.  This module brings that model to the
simulator:

* Each (network, lane) pair owns a **resident replica**: a private
  ``Network`` clone installed once (a one-time full payload, exactly
  what :func:`~repro.chain.lanes.build_lane_task` ships for a legacy
  attempt, unsliced) and kept in the worker across epochs.
* Per epoch the coordinator sends only the lane's **transaction queue**
  plus, asynchronously after each commit, a **merge-delta sync**
  (:class:`ResidentSync`): the state locations the epoch touched, as
  absolute authoritative values, plus the touched accounts and nonce
  records.  Workers reply with ordinary
  :class:`~repro.chain.lanes.LaneResult` deltas.
* A replica is a *pure replica of the epoch-start state*: after
  executing a queue the worker rolls back every account and nonce
  mutation its lane made (contract state is never mutated — the lane
  executes against CoW forks, as always), so the replica advances only
  through syncs.  ``tests/test_resident_properties.py`` proves the
  invariant: an incrementally-synced replica is indistinguishable from
  one reinstalled from scratch.
* Every message carries the coordinator's **state version** (one bump
  per commit).  A worker that restarted, missed a sync, or fell behind
  answers :class:`ResidentStale` instead of executing, and the
  supervisor retries with an install attached — silent divergence is
  structurally impossible.

The coordinator-side bookkeeping lives in :class:`ResidentTracker`
(owned by the network): it accumulates the epoch's touched locations
(merge-phase delta keys, the DS lane's touched set, every account and
nonce the coordinator mutated), cuts a :class:`ResidentSync` at each
commit, and pushes it to installed replicas *while the next epoch is
being prepared* — the epoch-pipelining half of this module.  Ordering
is preserved by the per-lane FIFO slots of
:class:`~repro.core.parallel.ResidentSlotPool`: a sync push enqueued
before the next epoch's run task is applied before it.

Touch tracking is deliberately an over-approximation: syncs carry
absolute values read from the authoritative post-commit state, so
shipping an unchanged location is harmless, and rolled-back view-change
attempts merely widen the sync.  What can never happen is shipping too
little — the differential battery (``tests/test_resident_differential``)
holds resident execution byte-identical to serial for every workload,
with and without injected worker kills.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field as dc_field

from ..scilla.state import MISSING, StateKey
from ..scilla.values import MapVal
from .dispatch import _pad
from .faults import WorkerKilled
from .lanes import (
    LaneResult, LaneTask, build_lane_task, instantiate_lane_network,
)
from .delta import compute_delta
from .transaction import Account, Transaction

# Replicas a single worker process (or the coordinator process, for
# thread slots) keeps before evicting the least-recently-used one.
# Generous: a replica is mostly CoW shares, and eviction only costs a
# reinstall on the next epoch that wants it back.
REPLICA_CAPACITY = 64

_GEN = itertools.count(1)


# --------------------------------------------------------------------------
# Wire types.
# --------------------------------------------------------------------------

@dataclass
class ResidentSync:
    """Everything an epoch changed, as absolute authoritative values.

    One sync record advances a replica from ``prev_version`` to
    ``version``.  Contract writes are ``(address, StateKey, value)``
    triples (``MISSING`` deletes a map entry); balances ship for every
    contract (there are few); accounts and nonces ship only for the
    addresses/senders the epoch touched.
    """

    prev_version: int
    version: int
    contract_writes: list[tuple[str, StateKey, object]]
    contract_balances: dict[str, int]
    accounts: dict[str, tuple[int, dict[int, int]]]
    nonce_used: dict[str, set[int]]
    nonce_last_global: dict[str, int]
    # Changed (sender, lane) pairs; each replica applies its own lane's.
    nonce_last_per_lane: dict[tuple[str, int], int]


@dataclass
class ResidentEpochTask:
    """One epoch's work order for a resident lane worker."""

    gen: int                  # coordinator network generation (replica key)
    lane: int
    epoch: int
    version: int              # required replica version (epoch-start state)
    queue: list[Transaction]
    gas_limit: int
    # Attached when the coordinator knows (or must assume) the worker
    # has no replica at `version`: a full unsliced legacy payload the
    # worker installs before executing.
    install: LaneTask | None = None
    metrics_enabled: bool = False
    worker_fault: tuple[str, float] | None = None


@dataclass(frozen=True)
class ResidentStale:
    """The worker had no replica at the required version (restarted,
    evicted, or a sync push failed).  The supervisor retries the lane
    with an install attached."""

    lane: int
    found_version: int        # -1 when the replica is absent entirely


# --------------------------------------------------------------------------
# Worker-side replica store.
# --------------------------------------------------------------------------

class _Replica:
    __slots__ = ("net", "version")

    def __init__(self, net, version: int):
        self.net = net
        self.version = version


# (gen, lane) -> replica.  Per worker process; for thread slots this is
# the coordinator process's own copy, shared by all thread slots (each
# lane's replica is only ever touched by its slot thread — the lock
# below only guards the dict itself).
_REPLICAS: "OrderedDict[tuple[int, int], _Replica]" = OrderedDict()
_replicas_lock = threading.Lock()


def _store_replica(key: tuple[int, int], replica: _Replica) -> None:
    with _replicas_lock:
        _REPLICAS.pop(key, None)
        _REPLICAS[key] = replica
        while len(_REPLICAS) > REPLICA_CAPACITY:
            _REPLICAS.popitem(last=False)


def _lookup_replica(key: tuple[int, int]) -> _Replica | None:
    with _replicas_lock:
        replica = _REPLICAS.get(key)
        if replica is not None:
            _REPLICAS.move_to_end(key)
        return replica


def _drop_replica(key: tuple[int, int]) -> None:
    with _replicas_lock:
        _REPLICAS.pop(key, None)


def reset_replicas() -> None:
    """Forget every resident replica (tests)."""
    with _replicas_lock:
        _REPLICAS.clear()


def resident_replica(gen: int, lane: int):
    """The live replica network for (gen, lane), or None (tests)."""
    replica = _lookup_replica((gen, lane))
    return replica.net if replica is not None else None


# --------------------------------------------------------------------------
# Worker entry points.
# --------------------------------------------------------------------------

def build_install_task(net, lane: int, ship_modules: bool) -> LaneTask:
    """A one-time install payload: the legacy full snapshot, unsliced
    (a resident replica must hold whole states — there is no per-epoch
    footprint to slice to), with an empty queue."""
    saved = net.slice_payloads
    net.slice_payloads = False
    try:
        task = build_lane_task(net, lane, [], net.cost.shard_gas_limit,
                               ship_modules=ship_modules)
    finally:
        net.slice_payloads = saved
    # The replica's runtime must be private to its slot thread — never
    # share the coordinator's interpreter cache.
    if ship_modules:
        task.runtime_cache = {}
    # Per-epoch registries are created at execution time instead.
    task.metrics_enabled = False
    return task


def run_resident_epoch(task: ResidentEpochTask
                       ) -> LaneResult | ResidentStale:
    """Execute one epoch's queue on the resident replica.

    With ``install`` attached the replica is (re)built first.  Without
    it, a missing or version-mismatched replica returns
    :class:`ResidentStale` — never a silently wrong result.
    """
    if task.worker_fault is not None:
        action, seconds = task.worker_fault
        if action == "kill-process":
            os._exit(13)
        if action == "kill-thread":
            raise WorkerKilled(
                f"lane {task.lane}: injected worker kill")
        time.sleep(seconds)   # "hang" / "slow"

    key = (task.gen, task.lane)
    if task.install is not None:
        replica = _Replica(instantiate_lane_network(task.install),
                           task.version)
        _store_replica(key, replica)
    else:
        replica = _lookup_replica(key)
        if replica is None:
            return ResidentStale(task.lane, -1)
        if replica.version != task.version:
            return ResidentStale(task.lane, replica.version)
    try:
        return _run_epoch_on_replica(replica, task)
    except BaseException:
        # Anything unexpected may have left the replica mid-mutation;
        # drop it so the next epoch reinstalls from authoritative state.
        _drop_replica(key)
        raise


def apply_resident_sync(gen: int, lane: int, sync: ResidentSync) -> bool:
    """Advance a replica by one committed epoch's changes.

    Fire-and-forget from the coordinator: on any mismatch the replica
    is dropped (the next run task answers stale and triggers a
    reinstall), so a lost or failed sync can only cost a round trip,
    never correctness.
    """
    key = (gen, lane)
    replica = _lookup_replica(key)
    if replica is None:
        return False
    if replica.version != sync.prev_version:
        _drop_replica(key)
        return False
    try:
        _apply_sync(replica.net, lane, sync)
    except Exception:
        _drop_replica(key)
        return False
    replica.version = sync.version
    return True


def _apply_sync(net, lane: int, sync: ResidentSync) -> None:
    for addr, state_key, value in sync.contract_writes:
        contract = net.contracts.get(addr)
        if contract is None:
            raise KeyError(addr)
        if value is MISSING and not state_key[1]:
            # A whole field the authoritative state does not have —
            # only possible across a structure change, which forces a
            # reinstall anyway; never delete a field on a replica.
            continue
        contract.state.write(state_key, value)
    for addr, balance in sync.contract_balances.items():
        contract = net.contracts.get(addr)
        if contract is None:
            raise KeyError(addr)
        contract.state.balance = balance
    for addr, (balance, portions) in sync.accounts.items():
        account = net.accounts.get(addr)
        if account is None:
            net.accounts[addr] = Account(addr, balance, dict(portions))
        else:
            account.balance = balance
            account.shard_portions = dict(portions)
    nonces = net.nonces
    for sender, values in sync.nonce_used.items():
        nonces.used[sender] = set(values)
    for sender, value in sync.nonce_last_global.items():
        nonces.last_global[sender] = value
    for (sender, pair_lane), value in sync.nonce_last_per_lane.items():
        if pair_lane == lane:
            nonces.last_per_lane[(sender, pair_lane)] = value


def _run_epoch_on_replica(replica: _Replica, task: ResidentEpochTask
                          ) -> LaneResult:
    """Run the queue on the replica and undo the run's account/nonce
    side effects afterwards, so the replica stays a pure image of the
    epoch-start state (contract states are only read — the lane
    executes against CoW forks exactly like every other executor).

    The undo map doubles as the delta source: account deltas are
    computed from the touched accounts only, O(touched) instead of the
    legacy executor's O(all users) diff.
    """
    from ..obs.metrics import NULL_REGISTRY, MetricsRegistry
    from .network import Network, _NetworkMeters

    net = replica.net
    if task.metrics_enabled:
        registry = MetricsRegistry()
    else:
        registry = None
    net.metrics = registry if registry is not None else NULL_REGISTRY
    net._meters = _NetworkMeters(net.metrics)
    net.epoch = task.epoch

    # Copy-on-first-touch undo map over account access: every account
    # the lane reads or mutates goes through Network._account, so
    # recording there is complete.  None marks "did not exist".
    undo: dict[str, tuple[int, dict[int, int]] | None] = {}

    def recording_account(address: str) -> Account:
        addr = _pad(address)
        if addr not in undo:
            account = net.accounts.get(addr)
            undo[addr] = (None if account is None
                          else (account.balance,
                                dict(account.shard_portions)))
        return Network._account(net, addr)

    senders = {_pad(tx.sender) for tx in task.queue}
    nonces = net.nonces
    pre_nonces = {
        s: (set(nonces.used.get(s, ())),
            nonces.last_global.get(s),
            nonces.last_per_lane.get((s, task.lane)))
        for s in senders}

    net._account = recording_account     # instance attr shadows the method
    try:
        mb, local_states, touched, deferred = net._run_lane(
            task.lane, task.queue, task.gas_limit)
    finally:
        del net.__dict__["_account"]

    deltas = []
    balance_deltas: dict[str, int] = {}
    for addr, local in local_states.items():
        base = net.contracts[addr].state
        delta = compute_delta(addr, task.lane, base, local,
                              touched.get(addr, set()),
                              net.contracts[addr].joins)
        if delta.entries:
            deltas.append(delta)
        balance_deltas[addr] = local.balance - base.balance

    account_deltas: dict[str, tuple[int, dict[int, int]]] = {}
    for addr, pre in undo.items():
        account = net.accounts.get(addr)
        post_balance = account.balance if account is not None else 0
        post_portions = (account.shard_portions if account is not None
                         else {})
        pre_balance, pre_portions = pre if pre is not None else (0, {})
        bal_d = post_balance - pre_balance
        portions_d = {
            shard: d for shard in set(post_portions) | set(pre_portions)
            if (d := post_portions.get(shard, 0)
                - pre_portions.get(shard, 0))}
        if bal_d or portions_d or pre is None:
            account_deltas[addr] = (bal_d, portions_d)

    nonce_used_added: dict[str, set[int]] = {}
    nonce_last_global: dict[str, int] = {}
    nonce_last_lane: dict[str, int] = {}
    for s, (pre_used, pre_lg, pre_ll) in pre_nonces.items():
        added = nonces.used.get(s, set()) - pre_used
        if added:
            nonce_used_added[s] = added
        lg = nonces.last_global.get(s)
        if lg is not None and lg != pre_lg:
            nonce_last_global[s] = lg
        ll = nonces.last_per_lane.get((s, task.lane))
        if ll is not None and ll != pre_ll:
            nonce_last_lane[s] = ll

    # Roll the replica back to the epoch-start image.
    for addr, pre in undo.items():
        if pre is None:
            net.accounts.pop(addr, None)
        else:
            account = net.accounts[addr]
            account.balance = pre[0]
            account.shard_portions = dict(pre[1])
    for s, (pre_used, pre_lg, pre_ll) in pre_nonces.items():
        if pre_used:
            nonces.used[s] = pre_used
        else:
            nonces.used.pop(s, None)
        if pre_lg is None:
            nonces.last_global.pop(s, None)
        else:
            nonces.last_global[s] = pre_lg
        if pre_ll is None:
            nonces.last_per_lane.pop((s, task.lane), None)
        else:
            nonces.last_per_lane[(s, task.lane)] = pre_ll

    return LaneResult(
        lane=task.lane, microblock=mb, deltas=deltas,
        balance_deltas=balance_deltas, deferred=deferred,
        account_deltas=account_deltas,
        nonce_used_added=nonce_used_added,
        nonce_last_global=nonce_last_global,
        nonce_last_lane=nonce_last_lane,
        metrics=registry.snapshot() if registry is not None else None,
    )


# --------------------------------------------------------------------------
# Coordinator-side tracking.
# --------------------------------------------------------------------------

class ResidentTracker:
    """Per-network record of what changed since each replica's last
    sync, plus the version counter and the installed-replica map.

    Touch recording is an over-approximation (syncs ship absolute
    values, so extra locations are harmless): merge-phase delta keys,
    the DS lane's touched set, every account ``Network._account``
    handed out, and every sender whose nonce record moved.  A deploy
    is a *structure* change — no sync can express it, so it clears the
    installed map and every lane reinstalls.
    """

    def __init__(self):
        self.gen = next(_GEN)
        self.version = 0
        # (strategy, lane) -> version the coordinator believes that
        # replica holds.  The worker-side version check is the safety
        # net when this belief is wrong (killed worker, lost sync).
        self.installed: dict[tuple[str, int], int] = {}
        self.structure_changed = False
        self.last_push_ns = 0
        self._state_keys: dict[str, set[StateKey]] = {}
        self._accounts: set[str] = set()
        self._nonce_senders: set[str] = set()

    # -- touch recording (called from the network's hot paths) ----------

    def touch_account(self, address: str) -> None:
        self._accounts.add(address)

    def touch_nonce(self, sender: str) -> None:
        self._nonce_senders.add(sender)

    def touch_state(self, address: str, keys) -> None:
        self._state_keys.setdefault(address, set()).update(keys)

    def mark_structure_change(self) -> None:
        self.structure_changed = True

    # -- version advance -------------------------------------------------

    def has_pending(self) -> bool:
        return bool(self._state_keys or self._accounts
                    or self._nonce_senders or self.structure_changed)

    def commit_epoch(self, net) -> None:
        """Cut the epoch's sync record, bump the version, and push the
        sync to every current replica — asynchronously, overlapping
        with whatever the coordinator does next (epoch pipelining)."""
        self._advance(net)

    def flush_out_of_band(self, net) -> None:
        """Fold changes made *between* epochs (create_account, deploy)
        into a version bump before dispatching on top of them."""
        if self.has_pending():
            self._advance(net)

    def _advance(self, net) -> None:
        state_keys, accounts, senders = (
            self._state_keys, self._accounts, self._nonce_senders)
        self._state_keys, self._accounts, self._nonce_senders = (
            {}, set(), set())
        prev = self.version
        self.version = prev + 1
        if self.structure_changed:
            # No sync can add or remove a contract: force reinstalls.
            self.structure_changed = False
            self.installed.clear()
            return
        targets = [key for key, v in self.installed.items() if v == prev]
        for key in [k for k, v in self.installed.items() if v != prev]:
            del self.installed[key]     # behind: reinstall on next use
        if not targets:
            return
        sync = self._build_sync(net, prev, state_keys, accounts, senders)
        self._push_sync(net, sync, targets)

    def _build_sync(self, net, prev: int,
                    state_keys: dict[str, set[StateKey]],
                    accounts: set[str],
                    senders: set[str]) -> ResidentSync:
        writes: list[tuple[str, StateKey, object]] = []
        for addr, keys in state_keys.items():
            contract = net.contracts.get(addr)
            if contract is None:
                continue
            state = contract.state
            # Paged fields: batch-fault the epoch's touched first keys
            # per field in one backend round-trip instead of one fault
            # per state.read below.
            by_field: dict[str, list] = {}
            for name, sub in keys:
                if sub:
                    by_field.setdefault(name, []).append(sub[0])
            for name, first_keys in by_field.items():
                field = state.fields.get(name)
                prefetch = getattr(
                    getattr(field, "entries", None), "prefetch", None)
                if prefetch is not None:
                    prefetch(first_keys)
            for key in keys:
                value = state.read(key)
                if isinstance(value, MapVal):
                    value = value.copy()     # CoW: never ship live maps
                writes.append((addr, key, value))
        balances = {addr: c.state.balance
                    for addr, c in net.contracts.items()}
        acct_values: dict[str, tuple[int, dict[int, int]]] = {}
        for addr in accounts:
            account = net.accounts.get(addr)
            if account is not None:
                acct_values[addr] = (account.balance,
                                     dict(account.shard_portions))
        used: dict[str, set[int]] = {}
        last_global: dict[str, int] = {}
        for s in senders:
            used[s] = set(net.nonces.used.get(s, ()))
            lg = net.nonces.last_global.get(s)
            if lg is not None:
                last_global[s] = lg
        last_per_lane = {pair: v
                         for pair, v in net.nonces.last_per_lane.items()
                         if pair[0] in senders}
        net._meters.resident_sync_deltas.inc(len(writes))
        return ResidentSync(
            prev_version=prev, version=self.version,
            contract_writes=writes, contract_balances=balances,
            accounts=acct_values, nonce_used=used,
            nonce_last_global=last_global,
            nonce_last_per_lane=last_per_lane)

    def _push_sync(self, net, sync: ResidentSync,
                   targets: list[tuple[str, int]]) -> None:
        import pickle

        from ..core.parallel import get_resident_pool
        meters = net._meters
        sync_bytes = None
        for strategy, lane in targets:
            try:
                pool = get_resident_pool(strategy, net.lane_workers)
                if strategy == "process" and net.metrics.enabled:
                    if sync_bytes is None:
                        sync_bytes = len(pickle.dumps(sync))
                    meters.resident_sync_bytes.inc(sync_bytes)
                pool.submit(lane, apply_resident_sync,
                            self.gen, lane, sync)
            except Exception:
                # Push failed (broken slot, unpicklable value): forget
                # the replica; the next epoch reinstalls it.
                self.installed.pop((strategy, lane), None)
            else:
                self.installed[(strategy, lane)] = sync.version
                meters.resident_sync_pushes.inc()
        if net.metrics.enabled and self.installed:
            self.last_push_ns = time.perf_counter_ns()
