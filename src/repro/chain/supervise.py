"""Lane supervision: deadlines, watchdog, retry, and circuit breakers.

The epoch loop's contract is that *no single worker failure can stall
an epoch past its deadline or force discarding unaffected lanes*.  The
old dispatch path (``pool.map`` in :mod:`repro.chain.lanes`) satisfied
neither half: a hung worker blocked the coordinator forever, and any
pool-level error threw away every lane's result and reran the whole
epoch serially.  This module replaces it with a supervised dispatcher:

* Each runnable lane is submitted as its own future and collected
  under a shared **per-lane deadline** (``SuperviseConfig.deadline_s``,
  derived from ``CostModel.microblock_timeout_s`` by default —
  mirroring the protocol rule that a MicroBlock missing past the
  consensus timeout triggers recovery).
* A **watchdog** classifies every failure into the
  :class:`LaneFailure` taxonomy (timeout / worker-death / pickle /
  footprint-escape / pool-broken), reaps a wedged process pool
  (``kill_process_pool``), and retries *only* the failed lanes with
  bounded exponential backoff and deterministic seeded jitter —
  completed lanes keep their results.  Retries are safe because a
  :class:`~repro.chain.lanes.LaneTask` is an immutable snapshot of the
  epoch-start state: re-executing it is idempotent.  Each retry builds
  a *fresh* task (new CoW forks, private interpreter cache) so a
  timed-out thread attempt still limping along in the background can
  never share mutable structures with its replacement.
* A per-strategy **circuit breaker** opens after repeated
  infrastructure failures, degrading process → thread → serial, and
  half-open-probes its way back up once a cooldown (counted in
  supervised epochs, so it is scheduler-independent) expires.
* A lane that keeps taking workers down is **quarantined**: pinned to
  the in-coordinator serial path and recorded like a dead letter, so
  one poison payload cannot grind the executor ladder down for
  everyone else.

Every decision is exported through ``repro.obs`` (``supervise.*``
counters, breaker-state gauges, retry/backoff histograms, and a
``supervise`` span) — all ``deterministic=False``, since real failures
and wall-clock deadlines legitimately differ between otherwise
identical runs.  ``docs/FAULTS.md`` documents the taxonomy, the
breaker state machine, and the tuning knobs.
"""

from __future__ import annotations

import enum
import pickle
import random
import time
from collections import deque
from concurrent.futures import BrokenExecutor, TimeoutError as FutureTimeout
from dataclasses import dataclass, replace as dc_replace

from .faults import FaultKind, WorkerKilled
from .lanes import LaneResult, build_lane_task, run_lane_task
from .speculate import SpeculationError


# --------------------------------------------------------------------------
# Failure taxonomy.
# --------------------------------------------------------------------------

class LaneFailureKind(enum.Enum):
    TIMEOUT = "timeout"                      # no result within deadline_s
    WORKER_DEATH = "worker-death"            # worker process/thread died
    PICKLE = "pickle"                        # task or result not picklable
    FOOTPRINT_ESCAPE = "footprint-escape"    # lane wrote outside its slice
    POOL_BROKEN = "pool-broken"              # submit/pool-level failure
    SPECULATION = "speculation"              # speculative lane abandoned

    def __str__(self) -> str:
        return self.value


# Kinds that indicate *executor infrastructure* trouble: they feed the
# circuit breaker and the poison-payload quarantine.  PICKLE and
# FOOTPRINT_ESCAPE are deterministic properties of the payload — a
# retry through the same pool cannot fix them, so they route straight
# to the in-coordinator serial path without tripping anything.
# SPECULATION behaves the same way: the abandoned lane restored its
# pre-lane state, and the inline rescue reruns it with speculation
# off, which cannot fail the same way again.
INFRA_FAILURES = frozenset({
    LaneFailureKind.TIMEOUT, LaneFailureKind.WORKER_DEATH,
    LaneFailureKind.POOL_BROKEN,
})


@dataclass(frozen=True)
class LaneFailure:
    """One classified failure of one lane attempt."""

    lane: int
    kind: LaneFailureKind
    strategy: str
    epoch: int
    attempt: int          # 0-based pool attempt that failed
    detail: str = ""

    def __str__(self) -> str:
        base = (f"epoch {self.epoch} lane {self.lane} "
                f"attempt {self.attempt} [{self.strategy}]: {self.kind}")
        return f"{base} — {self.detail}" if self.detail else base


# --------------------------------------------------------------------------
# Clocks (injectable, so backoff schedules are testable without sleeping).
# --------------------------------------------------------------------------

class SystemClock:
    """Real time; the default."""

    monotonic = staticmethod(time.monotonic)
    sleep = staticmethod(time.sleep)


class ManualClock:
    """A fake clock for tests: ``sleep`` advances time instantly and
    records the requested duration, so backoff schedules can be
    asserted deterministically."""

    def __init__(self, start: float = 0.0):
        self.now = float(start)
        self.sleeps: list[float] = []

    def monotonic(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds


# --------------------------------------------------------------------------
# Bounded detail log (satellite: net.executor_fallback_details).
# --------------------------------------------------------------------------

FALLBACK_DETAIL_LIMIT = 64


class BoundedLog(deque):
    """A fixed-capacity append-only detail log.

    Appends past capacity drop the oldest entry and count the drop, so
    a long chaos run cannot grow memory without bound while the loss
    stays observable (``dropped`` is surfaced as the
    ``net.executor.fallback_dropped`` gauge and persisted through
    snapshots).  Equality compares element-wise against any sequence,
    so assertions written against the old plain-list field still hold.
    """

    def __init__(self, iterable=(), maxlen: int = FALLBACK_DETAIL_LIMIT,
                 dropped: int = 0):
        super().__init__(iterable, maxlen)
        self.dropped = dropped

    def append(self, item) -> None:
        if self.maxlen is not None and len(self) == self.maxlen:
            self.dropped += 1
        super().append(item)

    def __eq__(self, other):
        if isinstance(other, (list, tuple, deque)):
            return list(self) == list(other)
        return NotImplemented

    def __ne__(self, other):
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None


# --------------------------------------------------------------------------
# Circuit breaker.
# --------------------------------------------------------------------------

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"
# Gauge encoding for supervise.breaker.* (docs/FAULTS.md).
BREAKER_GAUGE = {BREAKER_CLOSED: 0, BREAKER_HALF_OPEN: 1, BREAKER_OPEN: 2}


class CircuitBreaker:
    """Per-executor-strategy breaker over supervised epoch runs.

    CLOSED counts *consecutive* runs with an infrastructure failure;
    ``threshold`` of them trips the breaker OPEN.  An open breaker
    rejects runs for ``cooldown`` supervised epochs (counted in calls,
    not wall time, so the schedule is deterministic under test), then
    admits one HALF_OPEN probe: success closes it and resets the
    cooldown, another failure re-opens it with the cooldown doubled
    (capped).  ``transitions`` records every state change for the
    chaos report and the metrics snapshot.
    """

    def __init__(self, strategy: str, threshold: int, cooldown: int,
                 cooldown_cap: int):
        self.strategy = strategy
        self.threshold = threshold
        self.base_cooldown = cooldown
        self.cooldown_cap = cooldown_cap
        self.state = BREAKER_CLOSED
        self.failures = 0            # consecutive failed runs while closed
        self.cooldown = cooldown     # current open-state cooldown
        self.remaining = 0           # runs left before the next probe
        self.transitions: list[tuple[str, str]] = []

    def _move(self, state: str) -> None:
        if state != self.state:
            self.transitions.append((self.state, state))
            self.state = state

    def admits(self) -> bool:
        """One admission decision per supervised run."""
        if self.state == BREAKER_OPEN:
            self.remaining -= 1
            if self.remaining > 0:
                return False
            self._move(BREAKER_HALF_OPEN)
        return True

    def record_success(self) -> None:
        if self.state == BREAKER_HALF_OPEN:
            self.cooldown = self.base_cooldown
        self.failures = 0
        self._move(BREAKER_CLOSED)

    def record_failure(self) -> None:
        if self.state == BREAKER_HALF_OPEN:
            self.cooldown = min(self.cooldown * 2, self.cooldown_cap)
            self.remaining = self.cooldown
            self._move(BREAKER_OPEN)
            return
        self.failures += 1
        if self.state == BREAKER_CLOSED and self.failures >= self.threshold:
            self.remaining = self.cooldown
            self._move(BREAKER_OPEN)


# --------------------------------------------------------------------------
# Supervisor configuration.
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class SuperviseConfig:
    """Tuning knobs of the lane supervisor (see docs/FAULTS.md)."""

    # Per-lane deadline for one pool attempt.  Network.__init__ defaults
    # it to CostModel.microblock_timeout_s (REPRO_LANE_DEADLINE
    # overrides).
    deadline_s: float = 12.0
    # Pool re-submissions per lane per epoch beyond the first attempt;
    # a lane still failing afterwards runs serially in the coordinator.
    max_lane_retries: int = 2
    # Exponential backoff between retry rounds: base * 2**(round-1),
    # capped, stretched by up to `jitter` via a seeded uniform draw —
    # deterministic for a given (seed, epoch, round).
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    backoff_jitter: float = 0.25
    backoff_seed: int = 0
    # Breaker: consecutive failed runs to trip; cooldown in supervised
    # epochs before a half-open probe, doubled per failed probe.
    breaker_threshold: int = 3
    breaker_cooldown: int = 4
    breaker_cooldown_cap: int = 64
    # Consecutive epochs of infrastructure failure that pin one lane to
    # the serial path (poison-payload quarantine).
    quarantine_threshold: int = 2
    # Retained LaneFailure records (oldest dropped first).
    failure_log_limit: int = 256


@dataclass
class QuarantineRecord:
    """Dead-letter-style record of one quarantined (poison) lane."""

    lane: int
    epoch: int                    # epoch at which the lane was pinned
    failures: tuple[str, ...]     # the strikes that led here


# --------------------------------------------------------------------------
# The supervisor.
# --------------------------------------------------------------------------

class LaneSupervisor:
    """Supervised dispatch of an epoch's shard lanes.

    One instance lives on each :class:`~repro.chain.network.Network`
    and persists across epochs, carrying the breaker states, the
    quarantine set, and the bounded failure log.
    """

    def __init__(self, config: SuperviseConfig | None = None,
                 clock=None):
        self.config = config or SuperviseConfig()
        self.clock = clock or SystemClock()
        cfg = self.config
        self.breakers = {
            strategy: CircuitBreaker(strategy, cfg.breaker_threshold,
                                     cfg.breaker_cooldown,
                                     cfg.breaker_cooldown_cap)
            for strategy in ("process", "thread")}
        self.quarantined: dict[int, QuarantineRecord] = {}
        # lane -> failure strings from *consecutive* faulty epochs.
        self._strikes: dict[int, list[str]] = {}
        self.failures: deque[LaneFailure] = deque(
            maxlen=cfg.failure_log_limit)

    # -- admission (breaker ladder) -----------------------------------------

    def _admit(self, requested: str, net) -> str:
        """Walk the degradation ladder from the requested strategy to
        the first one whose breaker admits the run."""
        meters = net._meters
        ladder = ("process", "thread") if requested == "process" \
            else ("thread",)
        chosen = "serial"
        for strategy in ladder:
            breaker = self.breakers[strategy]
            before = breaker.state
            admitted = breaker.admits()
            if admitted and breaker.state == BREAKER_HALF_OPEN \
                    and before == BREAKER_OPEN:
                meters.breaker_probes.inc()
            if admitted:
                chosen = strategy
                break
        if chosen != requested:
            meters.degraded_epochs.inc()
            net.executor_fallback_details.append(
                f"supervise: {requested} breaker open; epoch "
                f"{net.epoch} degraded to {chosen}")
        self._export_breakers(meters)
        return chosen

    def _export_breakers(self, meters) -> None:
        for strategy, breaker in self.breakers.items():
            meters.breaker_state[strategy].set(
                BREAKER_GAUGE[breaker.state])

    # -- deterministic backoff ----------------------------------------------

    def backoff_delay(self, epoch: int, retry_round: int) -> float:
        """Delay before retry round ``retry_round`` (1-based) of
        ``epoch``: capped exponential base stretched by seeded jitter.
        Pure function of (config, epoch, round)."""
        cfg = self.config
        base = min(cfg.backoff_cap_s,
                   cfg.backoff_base_s * (2 ** (retry_round - 1)))
        rng = random.Random(cfg.backoff_seed * 1_000_003
                            + epoch * 8191 + retry_round)
        return base * (1.0 + cfg.backoff_jitter * rng.random())

    # -- fault payloads (chaos injection) -----------------------------------

    def _fault_payload(self, kind: FaultKind,
                       strategy: str) -> tuple[str, float] | None:
        d = self.config.deadline_s
        if kind is FaultKind.KILL_WORKER:
            return (("kill-process" if strategy == "process"
                     else "kill-thread"), 0.0)
        if kind is FaultKind.HANG_WORKER:
            # Finite (not an infinite loop) so a thread-pool worker
            # eventually frees its slot; well past the deadline so the
            # watchdog always fires first.
            return ("hang", d * 2.0 + 0.25)
        if kind is FaultKind.SLOW_LANE:
            # Lags but stays inside the deadline: must NOT trip the
            # watchdog (no false-positive timeouts).
            return ("slow", min(d * 0.25, 1.0))
        return None

    # -- bookkeeping ---------------------------------------------------------

    def _record(self, net, failure: LaneFailure) -> None:
        self.failures.append(failure)
        net._meters.lane_failures[failure.kind].inc()
        net.executor_fallback_details.append(f"supervise: {failure}")

    def _update_quarantine(self, net, lanes, infra_failures) -> None:
        """Advance per-lane strike counts; pin lanes that failed
        ``quarantine_threshold`` epochs in a row."""
        cfg = self.config
        meters = net._meters
        for lane, _ in lanes:
            if lane in self.quarantined:
                continue
            failure = infra_failures.get(lane)
            if failure is None:
                self._strikes.pop(lane, None)
                continue
            strikes = self._strikes.setdefault(lane, [])
            strikes.append(str(failure))
            if len(strikes) >= cfg.quarantine_threshold:
                self.quarantined[lane] = QuarantineRecord(
                    lane, net.epoch, tuple(strikes))
                self._strikes.pop(lane, None)
                meters.quarantine_additions.inc()
                net.executor_fallback_details.append(
                    f"supervise: lane {lane} quarantined to the serial "
                    f"path after {cfg.quarantine_threshold} consecutive "
                    f"faulty epochs")
        meters.quarantine_size.set(len(self.quarantined))

    # -- the supervised run --------------------------------------------------

    def run(self, net, lanes: list[tuple[int, list]], gas_limit: int,
            strategy: str) -> dict[int, LaneResult] | None:
        """Run the epoch's lanes under supervision.

        Returns ``{lane: LaneResult}`` on success or ``None`` when the
        whole epoch must fall back to the caller's serial loop (breaker
        ladder bottomed out, or an unrecoverable coordinator-side
        error).  Individual lane failures never surface here — they
        are retried in the pool and, as a last resort, re-executed
        serially *inside* this call, so sibling lanes keep their
        results.
        """
        strategy = self._admit(strategy, net)
        if strategy == "serial":
            return None
        resident = getattr(net, "_resident_tracker", None) is not None
        with net.tracer.span(f"supervise {strategy}"):
            try:
                if resident:
                    return self._run_supervised_resident(
                        net, lanes, gas_limit, strategy)
                return self._run_supervised(net, lanes, gas_limit,
                                            strategy)
            except Exception as exc:   # coordinator-side surprise
                net.executor_fallback_details.append(
                    f"supervise: {strategy}: {type(exc).__name__}: "
                    f"{exc!r}")
                self.breakers[strategy].record_failure()
                self._export_breakers(net._meters)
                return None

    def _run_supervised(self, net, lanes, gas_limit,
                        strategy) -> dict[int, LaneResult] | None:
        from ..core.parallel import (
            kill_process_pool, reset_process_pool, shared_process_pool,
            shared_thread_pool,
        )
        cfg = self.config
        meters = net._meters
        ship_modules = strategy == "thread"
        clock = self.clock

        worker_faults = (net.injector.worker_faults(net.epoch)
                         if net.injector is not None else {})

        def make_task(lane, attempt, inject, sliced=True):
            # A fresh snapshot per attempt: a timed-out thread attempt
            # may still be running, and must never share payload forks
            # or an interpreter with its replacement.
            saved = net.slice_payloads
            if not sliced:
                net.slice_payloads = False
            try:
                task = build_lane_task(net, lane, queues[lane],
                                       gas_limit,
                                       ship_modules=ship_modules)
            finally:
                net.slice_payloads = saved
            if ship_modules and attempt > 0:
                task.runtime_cache = {}
            if inject and attempt == 0:
                kind = worker_faults.get(lane)
                if kind is not None:
                    task.worker_fault = self._fault_payload(kind,
                                                            strategy)
            return task

        queues = dict(lanes)
        results: dict[int, LaneResult] = {}
        inline: dict[int, str] = {}        # lane -> reason
        attempts = {lane: 0 for lane in queues}
        infra_seen = False                 # any infra failure (breaker)
        # Lanes that never recovered in the pool this epoch (quarantine
        # strikes).  Collateral victims of a broken pool that succeed
        # on retry are NOT strikes — only the lane that keeps failing.
        strike_failures: dict[int, LaneFailure] = {}
        pending = []
        for lane, _ in lanes:
            if lane in self.quarantined:
                inline[lane] = "quarantined"
            else:
                pending.append(lane)

        round_no = 0
        while pending:
            round_no += 1
            if round_no > 1:
                delay = self.backoff_delay(net.epoch, round_no - 1)
                meters.supervise_backoff_ms.observe(delay * 1000.0)
                clock.sleep(delay)
            pool = (shared_thread_pool(net.lane_workers) if ship_modules
                    else shared_process_pool(net.lane_workers))
            futures = {}
            failures: dict[int, LaneFailure] = {}
            for lane in sorted(pending):
                try:
                    task = make_task(lane, attempts[lane], inject=True)
                    if strategy == "process" and net.metrics.enabled:
                        meters.payload_bytes.inc(len(pickle.dumps(task)))
                    futures[lane] = pool.submit(run_lane_task, task)
                except pickle.PickleError as exc:
                    failures[lane] = LaneFailure(
                        lane, LaneFailureKind.PICKLE, strategy,
                        net.epoch, attempts[lane], repr(exc))
                except Exception as exc:
                    failures[lane] = LaneFailure(
                        lane, LaneFailureKind.POOL_BROKEN, strategy,
                        net.epoch, attempts[lane],
                        f"submit failed: {type(exc).__name__}: {exc!r}")

            start = clock.monotonic()
            deadline = start + cfg.deadline_s
            hung = False
            for lane in sorted(futures):
                future = futures[lane]
                remaining = max(0.0, deadline - clock.monotonic())
                try:
                    result = future.result(timeout=remaining)
                except FutureTimeout:
                    if ship_modules:
                        # Dequeue a not-yet-started thread task.  For a
                        # process pool the kill below reaps everything;
                        # cancelling here would race its own reaper.
                        future.cancel()
                    hung = True
                    failures[lane] = LaneFailure(
                        lane, LaneFailureKind.TIMEOUT, strategy,
                        net.epoch, attempts[lane],
                        f"no result within {cfg.deadline_s:.3g}s")
                except WorkerKilled as exc:
                    failures[lane] = LaneFailure(
                        lane, LaneFailureKind.WORKER_DEATH, strategy,
                        net.epoch, attempts[lane], str(exc))
                except BrokenExecutor as exc:
                    failures[lane] = LaneFailure(
                        lane, LaneFailureKind.WORKER_DEATH, strategy,
                        net.epoch, attempts[lane],
                        f"{type(exc).__name__}: {exc}")
                except pickle.PickleError as exc:
                    failures[lane] = LaneFailure(
                        lane, LaneFailureKind.PICKLE, strategy,
                        net.epoch, attempts[lane], repr(exc))
                except SpeculationError as exc:
                    # The worker's speculative scheduler abandoned the
                    # lane after restoring its snapshot state; the
                    # inline rescue reruns it with speculation off.
                    failures[lane] = LaneFailure(
                        lane, LaneFailureKind.SPECULATION, strategy,
                        net.epoch, attempts[lane], str(exc))
                except Exception as exc:
                    failures[lane] = LaneFailure(
                        lane, LaneFailureKind.POOL_BROKEN, strategy,
                        net.epoch, attempts[lane],
                        f"{type(exc).__name__}: {exc!r}")
                else:
                    if clock.monotonic() - start > cfg.deadline_s / 2:
                        meters.slow_lanes.inc()
                    if result.footprint_escapes:
                        self._record(net, LaneFailure(
                            lane, LaneFailureKind.FOOTPRINT_ESCAPE,
                            strategy, net.epoch, attempts[lane],
                            "; ".join(result.footprint_escapes)))
                        inline[lane] = "footprint-escape"
                    else:
                        results[lane] = result

            # Watchdog: reap a pool that a hang or death has wedged
            # before the retry round resubmits into it.
            if strategy == "process" and failures:
                kinds = {f.kind for f in failures.values()}
                if hung:
                    kill_process_pool()
                    meters.pool_rebuilds.inc()
                elif kinds & {LaneFailureKind.WORKER_DEATH,
                              LaneFailureKind.POOL_BROKEN}:
                    reset_process_pool()
                    meters.pool_rebuilds.inc()

            pending = []
            for lane in sorted(failures):
                failure = failures[lane]
                self._record(net, failure)
                if failure.kind in INFRA_FAILURES:
                    infra_seen = True
                attempts[lane] += 1
                if failure.kind is LaneFailureKind.PICKLE:
                    inline[lane] = "pickle"    # a retry cannot fix it
                    strike_failures[lane] = failure
                elif failure.kind is LaneFailureKind.SPECULATION:
                    # Straight to the serial-path rescue (speculation
                    # off); no strike — the worker itself is healthy.
                    inline[lane] = "speculation"
                elif attempts[lane] <= cfg.max_lane_retries:
                    meters.lane_retries.inc()
                    pending.append(lane)
                else:
                    inline[lane] = "retries-exhausted"
                    if failure.kind in INFRA_FAILURES:
                        strike_failures[lane] = failure

        # Last resort: re-execute irrecoverable lanes serially in the
        # coordinator, from fresh fault-free snapshots.  Sibling lanes'
        # pool results stay untouched (the per-lane fallback bugfix).
        if not self._inline_rescue(net, queues, gas_limit, strategy,
                                   inline, attempts, results):
            return None

        for lane in attempts:
            meters.supervise_attempts.observe(attempts[lane] + 1)
        self._update_quarantine(net, lanes, strike_failures)
        self._finish_breakers(net, strategy, infra_seen)
        return results

    def _inline_rescue(self, net, queues, gas_limit, strategy, inline,
                       attempts, results) -> bool:
        """Re-execute irrecoverable lanes serially in the coordinator,
        sliced first, unsliced on a footprint escape.  Returns False
        only when an *unsliced* payload still escapes — the epoch then
        falls back to the caller's whole-serial loop."""
        meters = net._meters
        ship_modules = strategy == "thread"

        def rescue_task(lane, sliced):
            saved = net.slice_payloads
            if not sliced:
                net.slice_payloads = False
            try:
                task = build_lane_task(net, lane, queues[lane],
                                       gas_limit,
                                       ship_modules=ship_modules)
            finally:
                net.slice_payloads = saved
            if ship_modules:
                # Never share an interpreter with a pool attempt that
                # may still be limping along in the background.
                task.runtime_cache = {}
            # Rescues always run the strict serial loop: a lane that
            # already failed under speculation must not replay it.
            task.speculate = False
            return task

        for lane in sorted(inline):
            sliced = inline[lane] != "footprint-escape"
            result = run_lane_task(rescue_task(lane, sliced))
            if result.footprint_escapes and sliced:
                self._record(net, LaneFailure(
                    lane, LaneFailureKind.FOOTPRINT_ESCAPE, strategy,
                    net.epoch, attempts[lane],
                    "; ".join(result.footprint_escapes)))
                result = run_lane_task(rescue_task(lane, sliced=False))
            if result.footprint_escapes:   # unsliced: cannot happen
                net.executor_fallback_details.append(
                    f"supervise: lane {lane} escaped an unsliced "
                    f"payload; epoch falls back to serial")
                return False
            meters.lane_rescues.inc()
            results[lane] = result
        return True

    def _finish_breakers(self, net, strategy, infra_seen: bool) -> None:
        """Record the run's breaker outcome and export gauge states."""
        meters = net._meters
        breaker = self.breakers[strategy]
        before = breaker.state
        if infra_seen:
            breaker.record_failure()
        else:
            breaker.record_success()
        if breaker.state != before:
            if breaker.state == BREAKER_OPEN:
                meters.breaker_trips.inc()
                net.executor_fallback_details.append(
                    f"supervise: {strategy} breaker opened for "
                    f"{breaker.cooldown} epochs (epoch {net.epoch})")
            elif breaker.state == BREAKER_CLOSED \
                    and before == BREAKER_HALF_OPEN:
                meters.breaker_recoveries.inc()
                net.executor_fallback_details.append(
                    f"supervise: {strategy} breaker recovered "
                    f"(epoch {net.epoch})")
        self._export_breakers(meters)

    # -- the resident-worker run ---------------------------------------------

    def _run_supervised_resident(self, net, lanes, gas_limit,
                                 strategy) -> dict[int, LaneResult] | None:
        """Supervised dispatch onto resident shard workers.

        Same deadline/retry/watchdog/breaker semantics as
        :meth:`_run_supervised`, but tasks are
        :class:`~repro.chain.resident.ResidentEpochTask` messages to
        per-lane slots: only the queue ships per epoch, plus a one-time
        install for lanes the tracker does not believe current.  Two
        failure modes are new: a :class:`ResidentStale` reply (worker
        restarted or missed a sync) retries once with an install
        attached, and the process watchdog reaps single *slots* — every
        replica living in a killed slot is forgotten so the next epoch
        reinstalls it from authoritative state.
        """
        from ..core.parallel import get_resident_pool
        from .resident import (
            ResidentEpochTask, ResidentStale, build_install_task,
            run_resident_epoch,
        )
        cfg = self.config
        meters = net._meters
        ship_modules = strategy == "thread"
        clock = self.clock
        tracker = net._resident_tracker

        # Fold setup-time changes (create_account, deploy) into a
        # version bump before dispatching on top of them, and observe
        # how long ago the previous commit's async sync push started —
        # the coordinator-side measure of pipeline overlap.
        if net.metrics.enabled and tracker.last_push_ns:
            meters.pipeline_overlap_ns.observe(
                max(0, time.perf_counter_ns() - tracker.last_push_ns))
            tracker.last_push_ns = 0
        tracker.flush_out_of_band(net)
        version = tracker.version

        worker_faults = (net.injector.worker_faults(net.epoch)
                         if net.injector is not None else {})
        pool = get_resident_pool(strategy, net.lane_workers)
        queues = dict(lanes)
        results: dict[int, LaneResult] = {}
        inline: dict[int, str] = {}        # lane -> reason
        attempts = {lane: 0 for lane in queues}
        infra_seen = False
        strike_failures: dict[int, LaneFailure] = {}
        force_install: set[int] = set()    # attach an install next send
        stale_retried: set[int] = set()    # one stale retry per lane
        pending = []
        for lane, _ in lanes:
            if lane in self.quarantined:
                inline[lane] = "quarantined"
            else:
                pending.append(lane)
                if tracker.installed.get((strategy, lane)) != version:
                    force_install.add(lane)

        def make_task(lane, attempt, inject):
            install = None
            if lane in force_install:
                install = build_install_task(net, lane, ship_modules)
                (meters.resident_reinstalls
                 if attempt > 0 or lane in stale_retried
                 else meters.resident_installs).inc()
            task = ResidentEpochTask(
                gen=tracker.gen, lane=lane, epoch=net.epoch,
                version=version, queue=queues[lane],
                gas_limit=gas_limit, install=install,
                metrics_enabled=net.metrics.enabled)
            if inject and attempt == 0:
                kind = worker_faults.get(lane)
                if kind is not None:
                    task.worker_fault = self._fault_payload(kind,
                                                            strategy)
            return task

        round_no = 0
        while pending:
            round_no += 1
            if round_no > 1:
                delay = self.backoff_delay(net.epoch, round_no - 1)
                meters.supervise_backoff_ms.observe(delay * 1000.0)
                clock.sleep(delay)
            futures = {}
            failures: dict[int, LaneFailure] = {}
            stale_again: list[int] = []
            for lane in sorted(pending):
                try:
                    task = make_task(lane, attempts[lane], inject=True)
                    if strategy == "process" and net.metrics.enabled \
                            and task.install is not None:
                        meters.resident_install_bytes.inc(
                            len(pickle.dumps(task)))
                    futures[lane] = pool.submit(lane, run_resident_epoch,
                                                task)
                except pickle.PickleError as exc:
                    failures[lane] = LaneFailure(
                        lane, LaneFailureKind.PICKLE, strategy,
                        net.epoch, attempts[lane], repr(exc))
                except Exception as exc:
                    failures[lane] = LaneFailure(
                        lane, LaneFailureKind.POOL_BROKEN, strategy,
                        net.epoch, attempts[lane],
                        f"submit failed: {type(exc).__name__}: {exc!r}")

            start = clock.monotonic()
            deadline = start + cfg.deadline_s
            for lane in sorted(futures):
                future = futures[lane]
                remaining = max(0.0, deadline - clock.monotonic())
                try:
                    result = future.result(timeout=remaining)
                except FutureTimeout:
                    if ship_modules:
                        # Dequeue a not-yet-started thread task; the
                        # slot kill below handles process slots.
                        future.cancel()
                    failures[lane] = LaneFailure(
                        lane, LaneFailureKind.TIMEOUT, strategy,
                        net.epoch, attempts[lane],
                        f"no result within {cfg.deadline_s:.3g}s")
                except WorkerKilled as exc:
                    failures[lane] = LaneFailure(
                        lane, LaneFailureKind.WORKER_DEATH, strategy,
                        net.epoch, attempts[lane], str(exc))
                except BrokenExecutor as exc:
                    failures[lane] = LaneFailure(
                        lane, LaneFailureKind.WORKER_DEATH, strategy,
                        net.epoch, attempts[lane],
                        f"{type(exc).__name__}: {exc}")
                except pickle.PickleError as exc:
                    failures[lane] = LaneFailure(
                        lane, LaneFailureKind.PICKLE, strategy,
                        net.epoch, attempts[lane], repr(exc))
                except SpeculationError as exc:
                    # The worker's speculative scheduler abandoned the
                    # lane after restoring its snapshot state; the
                    # inline rescue reruns it with speculation off.
                    failures[lane] = LaneFailure(
                        lane, LaneFailureKind.SPECULATION, strategy,
                        net.epoch, attempts[lane], str(exc))
                except Exception as exc:
                    failures[lane] = LaneFailure(
                        lane, LaneFailureKind.POOL_BROKEN, strategy,
                        net.epoch, attempts[lane],
                        f"{type(exc).__name__}: {exc!r}")
                else:
                    if clock.monotonic() - start > cfg.deadline_s / 2:
                        meters.slow_lanes.inc()
                    if isinstance(result, ResidentStale):
                        # Restarted worker, evicted replica, or a sync
                        # push that never landed: never wrong, just
                        # behind.  One retry with an install attached;
                        # a second stale means the slot is churning —
                        # rescue inline and let the next epoch install.
                        meters.resident_stale.inc()
                        tracker.installed.pop((strategy, lane), None)
                        net.executor_fallback_details.append(
                            f"supervise: lane {lane} resident replica "
                            f"stale (found v{result.found_version}, "
                            f"want v{version}); reinstalling")
                        if lane in stale_retried:
                            inline[lane] = "resident-stale"
                        else:
                            stale_retried.add(lane)
                            force_install.add(lane)
                            meters.lane_retries.inc()
                            stale_again.append(lane)
                    else:
                        results[lane] = result
                        tracker.installed[(strategy, lane)] = version

            # Watchdog: reap wedged/broken *slots* (not the whole
            # pool), and forget every replica that lived in them.
            if strategy == "process" and failures:
                acted_slots: set[int] = set()
                for lane in sorted(failures):
                    kind = failures[lane].kind
                    slot = pool.slot_for(lane)
                    if slot in acted_slots:
                        continue
                    if kind is LaneFailureKind.TIMEOUT:
                        acted_slots.add(slot)
                        pool.kill_slot(lane)
                        meters.pool_rebuilds.inc()
                    elif kind in (LaneFailureKind.WORKER_DEATH,
                                  LaneFailureKind.POOL_BROKEN):
                        acted_slots.add(slot)
                        pool.reset_slot(lane)
                        meters.pool_rebuilds.inc()
                if acted_slots:
                    for key in [k for k in tracker.installed
                                if k[0] == strategy
                                and pool.slot_for(k[1]) in acted_slots]:
                        del tracker.installed[key]

            pending = stale_again
            for lane in sorted(failures):
                failure = failures[lane]
                self._record(net, failure)
                if failure.kind in INFRA_FAILURES:
                    infra_seen = True
                    # Whatever the worker was holding is suspect.
                    tracker.installed.pop((strategy, lane), None)
                    force_install.add(lane)
                attempts[lane] += 1
                if failure.kind is LaneFailureKind.PICKLE:
                    inline[lane] = "pickle"    # a retry cannot fix it
                    strike_failures[lane] = failure
                elif failure.kind is LaneFailureKind.SPECULATION:
                    # Straight to the serial-path rescue (speculation
                    # off); no strike — the worker itself is healthy.
                    inline[lane] = "speculation"
                elif attempts[lane] <= cfg.max_lane_retries:
                    meters.lane_retries.inc()
                    pending.append(lane)
                else:
                    inline[lane] = "retries-exhausted"
                    if failure.kind in INFRA_FAILURES:
                        strike_failures[lane] = failure

        if not self._inline_rescue(net, queues, gas_limit, strategy,
                                   inline, attempts, results):
            return None

        for lane in attempts:
            meters.supervise_attempts.observe(attempts[lane] + 1)
        self._update_quarantine(net, lanes, strike_failures)
        self._finish_breakers(net, strategy, infra_seen)
        return results
