"""Transactions, accounts and nonce tracking.

Implements the account-based model of Sec. 4 with the paper's two
revisions: *relaxed nonces* (Sec. 4.2.1 — processing in increasing
order without gap-filling, keeping replay protection) and
*split-balance gas accounting* (Sec. 4.2.2 — a user's balance is
partitioned across shards so gas can be charged without cross-shard
coordination).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dc_field

from ..scilla.values import Value

_tx_counter = itertools.count(1)


@dataclass(frozen=True)
class Transaction:
    """A signed user transaction.

    ``to`` is a user address (payment) or a contract address (call).
    Contract calls name a ``transition`` and carry typed ``args``.
    """

    sender: str
    to: str
    nonce: int
    amount: int = 0
    gas_limit: int = 50_000
    gas_price: int = 1
    transition: str | None = None
    args: tuple[tuple[str, Value], ...] = ()
    tx_id: int = dc_field(default_factory=lambda: next(_tx_counter))

    @property
    def is_contract_call(self) -> bool:
        return self.transition is not None

    def args_dict(self) -> dict[str, Value]:
        return dict(self.args)

    def __str__(self) -> str:
        if self.is_contract_call:
            return (f"tx#{self.tx_id} {self.sender}→{self.to}."
                    f"{self.transition} (nonce {self.nonce})")
        return (f"tx#{self.tx_id} {self.sender}→{self.to} "
                f"amount={self.amount} (nonce {self.nonce})")


def call(sender: str, contract: str, transition: str,
         args: dict[str, Value] | None = None, nonce: int = 0,
         amount: int = 0, gas_limit: int = 50_000) -> Transaction:
    """Convenience constructor for a contract-call transaction."""
    return Transaction(
        sender=sender, to=contract, nonce=nonce, amount=amount,
        gas_limit=gas_limit, transition=transition,
        args=tuple((args or {}).items()))


def payment(sender: str, to: str, amount: int, nonce: int = 0) -> Transaction:
    """Convenience constructor for a user-to-user payment."""
    return Transaction(sender=sender, to=to, nonce=nonce, amount=amount,
                       gas_limit=1_000)


@dataclass
class Account:
    """A user account with split-balance gas accounting.

    The total balance is partitioned into per-shard portions plus a DS
    portion; the portion for the shard handling the user's payments
    (the home shard) is larger, mirroring Sec. 4.2.2.
    """

    address: str
    balance: int = 0
    shard_portions: dict[int, int] = dc_field(default_factory=dict)

    def split_across(self, n_shards: int, home_shard: int,
                     home_fraction: float = 0.5) -> None:
        """(Re)partition the balance across ``n_shards`` + DS."""
        self.shard_portions.clear()
        if n_shards <= 0:
            self.shard_portions[-1] = self.balance
            return
        home = int(self.balance * home_fraction)
        rest = self.balance - home
        per_other = rest // (n_shards + 1)  # other shards + DS (-1)
        for shard in range(n_shards):
            self.shard_portions[shard] = per_other
        self.shard_portions[home_shard] = home
        self.shard_portions[-1] = self.balance - home - per_other * (
            n_shards - 1)

    def charge(self, shard: int, amount: int) -> bool:
        """Charge from the given shard's portion; False if insufficient."""
        portion = self.shard_portions.get(shard, 0)
        if portion < amount or self.balance < amount:
            return False
        self.shard_portions[shard] = portion - amount
        self.balance -= amount
        return True

    def credit(self, amount: int, shard: int = -1) -> None:
        self.balance += amount
        self.shard_portions[shard] = self.shard_portions.get(shard, 0) + amount


class NonceTracker:
    """Replay protection with relaxed ordering (Sec. 4.2.1).

    In relaxed mode a transaction is accepted iff its nonce was never
    used before and is greater than the last nonce *committed in the
    same processing lane* for that sender — increasing order without
    gap-filling, like Paxos ballots.  In strict mode (plain Ethereum/
    Zilliqa semantics, used for the ablation) the nonce must be exactly
    ``last + 1`` globally, so lanes cannot proceed independently.
    """

    def __init__(self, strict: bool = False):
        self.strict = strict
        self.used: dict[str, set[int]] = {}
        self.last_global: dict[str, int] = {}
        self.last_per_lane: dict[tuple[str, int], int] = {}

    def try_accept(self, sender: str, nonce: int, lane: int) -> bool:
        used = self.used.setdefault(sender, set())
        if nonce in used:
            return False  # replay
        if self.strict:
            if nonce != self.last_global.get(sender, 0) + 1:
                return False
        else:
            if nonce <= self.last_per_lane.get((sender, lane), 0):
                return False
        used.add(nonce)
        self.last_global[sender] = max(self.last_global.get(sender, 0), nonce)
        self.last_per_lane[(sender, lane)] = nonce
        return True
