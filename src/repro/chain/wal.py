"""Append-only write-ahead log for the sharded network simulator.

The paper's deployment target persists shard microblocks and DS
merges so a node can crash and rejoin without diverging; this module
is the simulator's equivalent of that durability substrate.  A
:class:`WriteAheadLog` records every state-changing *input* to a
:class:`~repro.chain.network.Network` — deployments, account
creations, epoch submissions — so a crashed process can be resumed by
deterministic re-execution (``Network.resume``), with durable
snapshots (:mod:`repro.chain.store`) bounding how much of the log
must be replayed.

Record framing
--------------

One record per line (JSONL with an integrity header)::

    <LEN> <CRC32-hex8> <payload>\\n

``LEN`` is the byte length of the UTF-8 payload, the CRC covers the
payload bytes, and the payload is compact JSON of the form
``{"seq": n, "type": t, "data": {...}}``.  Sequence numbers are
monotonic from 1 and contiguous across segment files.  Compact JSON
never contains a raw newline, so the format stays line-delimited.

Replay semantics (the crash-consistency contract):

* a record that fails its length or CRC check **in the middle of the
  log** is corruption — replay refuses it (:class:`WALCorruption`);
* an invalid record **at the very tail** is a torn write (the process
  died mid-``write``) — replay drops it and physically truncates the
  segment back to the last valid record, losing nothing before the
  tear.  A record whose trailing newline is missing counts as torn
  even if its bytes are otherwise intact: without the terminator
  there is no evidence the write completed.

Fsync policy
------------

``"always"`` fsyncs after every append, ``"commit"`` (the default)
only at explicit :meth:`barrier` calls — the network places barriers
after epoch submission records and commit records — and ``"never"``
leaves flushing to the OS (crash-unsafe; benchmarks only).

Segments
--------

The log is a sequence of ``wal-<first-seq>.log`` files.  Taking a
snapshot rotates to a fresh segment; :meth:`compact` then deletes
segments wholly covered by the newest snapshot (see
:class:`~repro.chain.store.SnapshotStore`).

Crash injection
---------------

``crash_at_barrier=k`` SIGKILLs the process right after the ``k``-th
barrier completes (clean tail), and ``crash_at_append=n`` SIGKILLs it
halfway through writing the ``n``-th record (torn tail).  Both exist
for the crash-torture harness (:mod:`repro.eval.chaos`) and should
never be set in normal operation.
"""

from __future__ import annotations

import json
import os
import signal
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any

FSYNC_POLICIES = ("always", "commit", "never")

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".log"


class WALError(Exception):
    """A write-ahead log could not be used."""


class WALCorruption(WALError):
    """A record in the *interior* of the log failed validation."""


@dataclass(frozen=True)
class WALRecord:
    """One decoded log record."""

    seq: int
    type: str
    data: Any


def _frame(payload: bytes) -> bytes:
    return (f"{len(payload)} {zlib.crc32(payload):08x} ".encode()
            + payload + b"\n")


def _encode(record: WALRecord) -> bytes:
    payload = json.dumps(
        {"seq": record.seq, "type": record.type, "data": record.data},
        separators=(",", ":")).encode()
    return _frame(payload)


def _try_decode(line: bytes) -> WALRecord | None:
    """Decode one framed line; ``None`` if the framing is invalid."""
    head, sep, rest = line.partition(b" ")
    if not sep or not head.isdigit():
        return None
    crc_hex, sep, payload = rest.partition(b" ")
    if not sep or len(crc_hex) != 8:
        return None
    if len(payload) != int(head):
        return None
    try:
        if zlib.crc32(payload) != int(crc_hex, 16):
            return None
        obj = json.loads(payload)
        return WALRecord(obj["seq"], obj["type"], obj["data"])
    except (ValueError, KeyError, TypeError):
        return None


def _segment_files(directory: Path) -> list[Path]:
    return sorted(p for p in directory.iterdir()
                  if p.name.startswith(SEGMENT_PREFIX)
                  and p.name.endswith(SEGMENT_SUFFIX))


def _scan_segment(path: Path, expected_seq: int | None,
                  is_last: bool) -> tuple[list[WALRecord], int]:
    """Read one segment, returning ``(records, valid_byte_length)``.

    An invalid record raises :class:`WALCorruption` unless it is the
    tail of the *last* segment, in which case it is a torn write and
    everything from its first byte on is dropped.
    """
    blob = path.read_bytes()
    records: list[WALRecord] = []
    pos = 0
    while pos < len(blob):
        newline = blob.find(b"\n", pos)
        torn_reason = None
        record = None
        if newline < 0:
            torn_reason = "unterminated record"
        else:
            record = _try_decode(blob[pos:newline])
            if record is None:
                torn_reason = "bad frame or CRC"
            elif expected_seq is not None and record.seq != expected_seq:
                torn_reason = (f"sequence gap (expected {expected_seq}, "
                               f"found {record.seq})")
        if torn_reason is not None:
            at_tail = is_last and (newline < 0 or newline == len(blob) - 1)
            if not at_tail:
                raise WALCorruption(
                    f"{path.name} at byte {pos}: {torn_reason}, with "
                    f"further records after it")
            return records, pos
        assert record is not None and newline >= 0
        records.append(record)
        expected_seq = record.seq + 1
        pos = newline + 1
    return records, pos


def read_wal(data_dir: str | os.PathLike) -> list[WALRecord]:
    """Read every valid record in the log, read-only.

    Torn tail records are silently dropped (but the files are left
    untouched); interior corruption raises :class:`WALCorruption`.
    """
    directory = Path(data_dir)
    if not directory.is_dir():
        return []
    records: list[WALRecord] = []
    segments = _segment_files(directory)
    expected: int | None = None
    for index, path in enumerate(segments):
        is_last = index == len(segments) - 1
        found, _ = _scan_segment(path, expected, is_last)
        records.extend(found)
        if found:
            expected = found[-1].seq + 1
    return records


class WriteAheadLog:
    """An append-only, CRC-framed, segmented write-ahead log.

    Opening an existing log validates every record, truncates a torn
    tail in place, and positions appends after the last valid record;
    the records read during recovery are available as ``recovered``.
    """

    def __init__(self, data_dir: str | os.PathLike,
                 fsync: str = "commit",
                 crash_at_barrier: int | None = None,
                 crash_at_append: int | None = None):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(f"unknown fsync policy {fsync!r}; expected "
                             f"one of {FSYNC_POLICIES}")
        self.fsync = fsync
        self.dir = Path(data_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self._crash_at_barrier = crash_at_barrier
        self._crash_at_append = crash_at_append
        self.appends = 0
        self.barriers = 0
        self.recovered: list[WALRecord] = []
        self._handle = None

        segments = _segment_files(self.dir)
        if not segments:
            self._next_seq = 1
            self._open_segment(first_seq=1)
            return
        expected: int | None = None
        for index, path in enumerate(segments):
            is_last = index == len(segments) - 1
            found, valid_len = _scan_segment(path, expected, is_last)
            self.recovered.extend(found)
            if found:
                expected = found[-1].seq + 1
            if is_last and valid_len < path.stat().st_size:
                with open(path, "r+b") as handle:
                    handle.truncate(valid_len)
                    handle.flush()
                    os.fsync(handle.fileno())
        if self.recovered:
            self._next_seq = self.recovered[-1].seq + 1
        else:
            # Segments exist but hold no complete record; continue the
            # sequence implied by the last segment's name.
            self._next_seq = _first_seq_of(segments[-1])
        self._handle = open(segments[-1], "ab")

    # -- naming -----------------------------------------------------------------

    def _segment_path(self, first_seq: int) -> Path:
        return self.dir / f"{SEGMENT_PREFIX}{first_seq:010d}{SEGMENT_SUFFIX}"

    def _open_segment(self, first_seq: int) -> None:
        if self._handle is not None:
            self._handle.close()
        path = self._segment_path(first_seq)
        self._handle = open(path, "ab")
        self._fsync_dir()

    def _fsync_dir(self) -> None:
        if self.fsync == "never":
            return
        fd = os.open(self.dir, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- writing ----------------------------------------------------------------

    @property
    def last_seq(self) -> int:
        return self._next_seq - 1

    def _io_failed(self, what: str, exc: OSError) -> WALError:
        """Convert an ``OSError`` from the disk into a typed
        :class:`WALError` and poison the log.

        A failed write may have left a partial frame on disk, so
        further appends could interleave with the torn bytes; closing
        the handle makes every later call fail cleanly ("closed").
        The on-disk log is still valid up to the last complete record
        — ``Network.resume`` truncates the torn tail and continues —
        so a mid-epoch I/O failure surfaces as one clean exception
        with the network left resumable.
        """
        handle, self._handle = self._handle, None
        if handle is not None:
            try:
                handle.close()
            except OSError:
                pass
        return WALError(f"write-ahead log {what} failed: "
                        f"{type(exc).__name__}: {exc}")

    def append(self, type: str, data: Any) -> int:
        """Append one record; returns its sequence number."""
        if self._handle is None:
            raise WALError("write-ahead log is closed")
        seq = self._next_seq
        frame = _encode(WALRecord(seq, type, data))
        self.appends += 1
        if self._crash_at_append is not None \
                and self.appends >= self._crash_at_append:
            # Simulate a crash mid-write: half the record reaches the
            # disk, then the process dies without any cleanup.
            self._handle.write(frame[:max(1, len(frame) // 2)])
            self._handle.flush()
            os.fsync(self._handle.fileno())
            _die()
        try:
            self._handle.write(frame)
            self._next_seq = seq + 1
            if self.fsync == "always":
                self._handle.flush()
                os.fsync(self._handle.fileno())
        except OSError as exc:
            raise self._io_failed("append", exc) from exc
        return seq

    def barrier(self) -> None:
        """A durability point: everything appended so far survives a
        crash after this call returns (under ``always``/``commit``)."""
        if self._handle is None:
            raise WALError("write-ahead log is closed")
        self.barriers += 1
        try:
            self._handle.flush()
            if self.fsync != "never":
                os.fsync(self._handle.fileno())
        except OSError as exc:
            raise self._io_failed("barrier fsync", exc) from exc
        if self._crash_at_barrier is not None \
                and self.barriers >= self._crash_at_barrier:
            _die()

    def rotate(self) -> None:
        """Start a new segment at the next sequence number (called
        after a snapshot, so compaction can drop whole files)."""
        try:
            if self._handle is not None:
                self._handle.flush()
                if self.fsync != "never":
                    os.fsync(self._handle.fileno())
            self._open_segment(first_seq=self._next_seq)
        except OSError as exc:
            raise self._io_failed("rotate", exc) from exc

    def compact(self, keep_from_seq: int) -> list[str]:
        """Delete segments whose every record precedes ``keep_from_seq``.

        The active segment is never deleted.  Returns the deleted file
        names.
        """
        segments = _segment_files(self.dir)
        deleted: list[str] = []
        for path, successor in zip(segments, segments[1:]):
            if _first_seq_of(successor) <= keep_from_seq:
                path.unlink()
                deleted.append(path.name)
        if deleted:
            self._fsync_dir()
        return deleted

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.flush()
                if self.fsync != "never":
                    os.fsync(self._handle.fileno())
                self._handle.close()
            except OSError as exc:
                raise self._io_failed("close", exc) from exc
            self._handle = None


def _first_seq_of(path: Path) -> int:
    stem = path.name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError as exc:
        raise WALError(f"malformed segment name {path.name!r}") from exc


def _die() -> None:  # pragma: no cover - the process does not survive
    os.kill(os.getpid(), signal.SIGKILL)
