"""Safety nets for the sharded network: checkpoints, delta validation
and recovery bookkeeping.

:mod:`repro.chain.faults` breaks the network; this module is how the
network survives.  Three mechanisms, mirrored on real deployments:

* **Per-epoch checkpoints** (:class:`NetworkCheckpoint`) — a *mark*
  into the network's :class:`~repro.scilla.state.StateJournal` plus
  cheap scalar snapshots (account partitions, nonce tracker, backlog,
  counters), taken before the shard phase.  ``take`` is O(accounts),
  never O(state): contract states are covered by the journal, which
  records an undo entry per write.  A FinalBlock is the only commit
  point: if the DS committee has to exclude a lane mid-epoch (view
  change), the whole epoch attempt is rolled back to the checkpoint —
  replaying the undo journal down to the mark — and retried without
  the faulty lane.

* **Delta footprint validation** (:func:`validate_delta`) — the DS
  committee checks every received StateDelta against the deployed
  sharding signature before merging it.  An ``OwnOverwrite`` entry
  must live in a component the producing shard actually owns (the
  same ``component_shard`` hash the lookup nodes route by), its join
  kind must match the signature, and its field must exist.  A delta
  violating any of these is byzantine: it is rejected with a
  structured :class:`DeltaViolation`, never merged.  ``IntMerge``
  entries commute, so any shard may legitimately contribute to them.

* **State fingerprints** (:func:`state_fingerprint`) — a canonical,
  order-independent hash of a contract state, used by the ``chaos``
  consistency verdict to compare a faulty run against the fault-free
  run.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field as dc_field

from ..core.domain import PseudoField
from ..core.joins import JoinKind
from ..scilla.state import ContractState, StateKey
from ..scilla.values import MapVal, Value
from .delta import StateDelta
from .dispatch import DS, key_token


# --------------------------------------------------------------------------
# Delta validation against the deployed signature's write footprint.
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class DeltaViolation:
    """Why the DS committee rejected a shard's StateDelta."""

    contract: str
    shard: int
    key: StateKey | None
    reason: str

    def __str__(self) -> str:
        where = ""
        if self.key is not None:
            name, keys = self.key
            where = name + "".join(f"[{k}]" for k in keys) + ": "
        return (f"delta from shard {self.shard} for {self.contract} "
                f"rejected ({where}{self.reason})")


def validate_delta(delta: StateDelta, contract, dispatcher
                   ) -> DeltaViolation | None:
    """Check a shard's delta against the contract's write footprint.

    ``contract`` is the network's ``DeployedContract``; ``dispatcher``
    the lookup-node dispatcher whose ``component_shard`` assignment
    the validation mirrors — routing and validation agree by
    construction because they share the hash and the field-level
    cache.

    Soundness: every non-commutative (``OwnOverwrite``) write in a
    selected transition carries an ``Owns`` constraint (signature
    derivation, Fig. 9), so a legitimately routed transaction only
    produces ``OwnOverwrite`` entries inside components owned by its
    assigned shard.  For contracts dispatched by the default strategy
    (no signature), only the contract's home shard executes shard-side
    at all.  Anything else is byzantine.
    """
    def bad(key: StateKey | None, reason: str) -> DeltaViolation:
        return DeltaViolation(delta.contract, delta.shard, key, reason)

    if delta.shard == DS:
        return bad(None, "the DS committee does not submit deltas")
    joins = contract.joins
    signature_mode = (dispatcher.use_signatures
                      and contract.signature is not None)
    for entry in delta.entries:
        field, keys = entry.key
        if field not in contract.state.field_types:
            return bad(entry.key, f"unknown field {field!r}")
        declared = joins.get(field, JoinKind.OWN_OVERWRITE)
        if entry.kind is not declared:
            return bad(entry.key,
                       f"claims {entry.kind} but the deployed "
                       f"signature declares {declared}")
        if entry.kind is JoinKind.INT_MERGE:
            continue  # commutative: any shard may contribute
        if signature_mode:
            try:
                tokens = tuple(key_token(k) for k in keys)
            except ValueError:
                return bad(entry.key, "key not usable for ownership")
            owner = dispatcher.component_shard(
                delta.contract, PseudoField(field), tokens)
        else:
            owner = dispatcher.home_shard(delta.contract)
        if owner != delta.shard:
            return bad(entry.key,
                       f"component owned by shard {owner}")
    return None


# --------------------------------------------------------------------------
# Epoch checkpoints (the rollback target of a view change).
# --------------------------------------------------------------------------

@dataclass
class NetworkCheckpoint:
    """Everything an epoch attempt can mutate, as a rollback point.

    Contract states are *not* copied: ``journal_mark`` pins a position
    in the network's :class:`~repro.scilla.state.StateJournal`, and
    :meth:`restore` replays the undo entries recorded above it.  Only
    the scalar bookkeeping that bypasses the journal (accounts,
    nonces, mempool, counters, telemetry) is snapshotted eagerly.

    Restoring is idempotent and repeatable: after a rollback the
    journal head sits exactly at the mark, so one checkpoint supports
    any number of view changes within the epoch.  :meth:`release`
    commits past the checkpoint, letting the journal truncate —
    ``Network._process_epoch`` releases its own checkpoint when the
    epoch commits, while a checkpoint held externally (tests, tools)
    keeps its entries alive until released or dropped with the
    network.
    """

    epoch: int
    journal_mark: int
    # Addresses deployed at take-time: restore drops contracts (and
    # their dispatcher registrations) created by an aborted attempt.
    contract_addrs: frozenset[str]
    accounts: dict[str, tuple[int, dict[int, int]]]
    nonce_used: dict[str, set[int]]
    nonce_last_global: dict[str, int]
    nonce_last_per_lane: dict[tuple[str, int], int]
    backlog: list
    # An aborted attempt must not leak dead-lettered transactions or
    # inflated executor counters into the committed epoch.
    dead_letter: list = dc_field(default_factory=list)
    executor_fallbacks: int = 0
    executor_fallback_details: list = dc_field(default_factory=list)
    executor_fallback_dropped: int = 0
    # Telemetry snapshot (None with a disabled registry): lane counters
    # recorded by a discarded attempt roll back with everything else,
    # keeping the committed totals executor-independent.
    metrics: dict | None = None

    @classmethod
    def take(cls, net) -> "NetworkCheckpoint":
        t0 = time.perf_counter_ns() if net.metrics.enabled else 0
        checkpoint = cls(
            metrics=(net.metrics.snapshot()
                     if net.metrics.enabled else None),
            epoch=net.epoch,
            journal_mark=net.journal.mark(),
            contract_addrs=frozenset(net.contracts),
            accounts={addr: (acc.balance, dict(acc.shard_portions))
                      for addr, acc in net.accounts.items()},
            nonce_used={s: set(v) for s, v in net.nonces.used.items()},
            nonce_last_global=dict(net.nonces.last_global),
            nonce_last_per_lane=dict(net.nonces.last_per_lane),
            backlog=list(net.backlog),
            dead_letter=list(net.dead_letter),
            executor_fallbacks=net.executor_fallbacks,
            executor_fallback_details=list(net.executor_fallback_details),
            executor_fallback_dropped=getattr(
                net.executor_fallback_details, "dropped", 0),
        )
        if net.metrics.enabled:
            net._meters.checkpoint_take_ns.observe(
                time.perf_counter_ns() - t0)
        return checkpoint

    def restore(self, net) -> None:
        t0 = time.perf_counter_ns() if net.metrics.enabled else 0
        net.journal.rollback_to(self.journal_mark)
        # Contracts deployed after the checkpoint (e.g. during an
        # attempt that is now being discarded) must disappear entirely:
        # state, runtime, and their lookup-node registration.
        for addr in [a for a in net.contracts
                     if a not in self.contract_addrs]:
            del net.contracts[addr]
            net.dispatcher.contracts.pop(addr, None)
            net.dispatcher._field_level_cache.pop(addr, None)
        # Accounts created lazily during the aborted attempt would
        # otherwise keep credits from discarded lanes.
        for addr in list(net.accounts):
            if addr not in self.accounts:
                del net.accounts[addr]
        for addr, (balance, portions) in self.accounts.items():
            account = net.accounts[addr]
            account.balance = balance
            account.shard_portions = dict(portions)
        net.nonces.used = {s: set(v) for s, v in self.nonce_used.items()}
        net.nonces.last_global = dict(self.nonce_last_global)
        net.nonces.last_per_lane = dict(self.nonce_last_per_lane)
        net.backlog = list(self.backlog)
        net.dead_letter = list(self.dead_letter)
        net.executor_fallbacks = self.executor_fallbacks
        from .supervise import BoundedLog
        net.executor_fallback_details = BoundedLog(
            self.executor_fallback_details,
            dropped=self.executor_fallback_dropped)
        if self.metrics is not None:
            net.metrics.reset_to(self.metrics)
        if net.metrics.enabled:
            net._meters.checkpoint_restore_ns.observe(
                time.perf_counter_ns() - t0)

    def release(self, net) -> None:
        """Commit past this checkpoint: the journal may truncate every
        entry no other outstanding checkpoint still needs."""
        net.journal.release(self.journal_mark)


# --------------------------------------------------------------------------
# Canonical state fingerprints (the chaos consistency verdict).
# --------------------------------------------------------------------------

def _canonical(value: Value):
    """A JSON-able canonical form, independent of map insertion order
    (which differs between a faulty run and a fault-free run even when
    the final states are equal)."""
    if isinstance(value, MapVal):
        return {"map": sorted(
            ((key_token(k), _canonical(v))
             for k, v in value.entries.items()),
            key=lambda kv: kv[0])}
    return key_token(value)


def state_fingerprint(state: ContractState) -> str:
    """A stable hash of one contract's semantic state."""
    payload = {
        "address": state.address,
        "balance": state.balance,
        "fields": {name: _canonical(value)
                   for name, value in sorted(state.fields.items())},
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def network_fingerprint(net) -> dict[str, str]:
    """Fingerprints of every deployed contract, sorted by address."""
    return {addr: state_fingerprint(net.contracts[addr].state)
            for addr in sorted(net.contracts)}


def fingerprint_digest(net) -> str:
    """One hash over the whole network fingerprint, compact enough to
    embed in WAL commit records; replay verifies it after re-executing
    each epoch."""
    blob = json.dumps(network_fingerprint(net), sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()
