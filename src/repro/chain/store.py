"""Durable epoch snapshots for the sharded network simulator.

A snapshot is a *self-contained* JSON image of everything a
:class:`~repro.chain.network.Network` can mutate — contract states,
account balance partitions, the nonce tracker, the retry backlog and
dead-letter list, the fault injector's counters, and the network's
own configuration (including the fault plan) — pinned to the WAL
sequence number it covers.  ``Network.resume`` loads the newest valid
snapshot and deterministically re-executes only the WAL records past
it, so snapshots bound replay time and let
:meth:`~repro.chain.wal.WriteAheadLog.compact` drop old segments.

Snapshots are written atomically: the JSON body (with an embedded
SHA-256 digest) goes to a temporary file that is fsynced and then
``os.replace``d into place, so a crash can never leave a
half-written snapshot visible — a reader either sees the old set of
snapshots or the new one.  Retention keeps the newest ``keep``
snapshots; loading walks newest-to-oldest and skips any file whose
digest does not verify.

What is *not* in a snapshot: the block history (``Network.blocks``)
and per-epoch fault logs — they are outputs, not inputs, and resuming
restarts them empty — and live runtime caches, which are rebuilt on
demand from contract sources.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import Any

from .serialization import (
    signature_from_obj, signature_to_obj, state_from_obj, state_to_obj,
    transaction_from_obj, transaction_to_obj,
)

SNAPSHOT_VERSION = 1
SNAPSHOT_PREFIX = "snap-"
SNAPSHOT_SUFFIX = ".json"
BACKEND_PREFIX = "state-"
BACKEND_SUFFIX = ".sqlite"
BACKEND_LIVE_NAME = "state.sqlite"


class SnapshotError(Exception):
    """No usable snapshot / snapshot machinery failure."""


class StoreError(SnapshotError):
    """An I/O failure while persisting a snapshot (write/fsync/rename).

    Raised in place of the raw ``OSError`` so callers see a typed
    durability error; the in-memory network is untouched (the epoch
    already committed) and the on-disk state is still the previous,
    intact snapshot set — the network remains resumable.
    """


# --------------------------------------------------------------------------
# Network <-> snapshot object.
# --------------------------------------------------------------------------

def snapshot_network(net, wal_seq: int, backend_obj: Any = None) -> Any:
    """Capture the network's full mutable state as a JSON-able object.

    ``backend_obj`` is the descriptor returned by
    :meth:`SnapshotStore.save_backend` when the network pages state
    through an external backend: contract map fields then serialise as
    compact ``PagedMap`` references (dirty overlay + tombstones only)
    against the sidecar the descriptor pins by digest, instead of
    inlining every entry.
    """
    paged_backend = (net.state_backend
                     if backend_obj is not None else None)
    obj: dict[str, Any] = {
        "version": SNAPSHOT_VERSION,
        "epoch": net.epoch,
        "wal_seq": wal_seq,
        "config": net._config_obj(),
        "contracts": {
            addr: {
                "source": c.source,
                "state": state_to_obj(c.state, backend=paged_backend),
                "signature": (signature_to_obj(c.signature)
                              if c.signature is not None else None),
            }
            for addr, c in net.contracts.items()
        },
        "accounts": {
            addr: [acc.balance,
                   {str(shard): amount
                    for shard, amount in acc.shard_portions.items()}]
            for addr, acc in net.accounts.items()
        },
        "nonces": {
            "used": {s: sorted(v) for s, v in net.nonces.used.items()},
            "last_global": dict(net.nonces.last_global),
            "last_per_lane": [[s, lane, v] for (s, lane), v
                              in net.nonces.last_per_lane.items()],
        },
        "backlog": [[transaction_to_obj(e.tx), e.retries, e.not_before]
                    for e in net.backlog],
        "dead_letter": [transaction_to_obj(tx) for tx in net.dead_letter],
        "counters": {
            "executor_fallbacks": net.executor_fallbacks,
            "executor_fallback_dropped": getattr(
                net.executor_fallback_details, "dropped", 0),
            "epoch_tags": dict(net.epoch_tags),
        },
        "executor_fallback_details": list(net.executor_fallback_details),
        "notes": list(net.wal_notes),
        # Telemetry travels with the snapshot so a resumed network's
        # counters continue from the crash point: replay re-records
        # only the epochs past the snapshot (None when disabled).
        "metrics": (net.metrics.snapshot()
                    if net.metrics.enabled else None),
    }
    if net.injector is not None:
        obj["injector"] = {
            "injected": net.injector.injected,
            "skipped": net.injector.skipped,
            "dropped": [transaction_to_obj(tx)
                        for tx in net.injector.dropped],
        }
    if net.mempool is not None:
        # Service mode: the admission pool's pending entries travel
        # with the snapshot (WAL compaction may drop their svc-admit
        # records), in global drain order.
        obj["mempool"] = net.mempool.to_obj()
    if backend_obj is not None:
        obj["backend"] = backend_obj
    return obj


def network_from_snapshot(obj: Any, executor: str | None = None,
                          lane_workers: int | None = None,
                          metrics=None, tracer=None,
                          state_backend=None):
    """Rebuild a live (non-durable) Network from a snapshot object.

    Contract runtimes are rebuilt from source through the cached
    deployment pipeline; everything else is restored verbatim.  The
    caller (``Network.resume``) attaches durability afterwards.

    ``state_backend`` is the page store the snapshot's ``PagedMap``
    references resolve against (a restored sidecar); snapshots that
    inline every map entry ignore it except to re-adopt the restored
    fields into paged form.
    """
    from ..core.pipeline import run_pipeline_cached
    from ..scilla.interpreter import Interpreter
    from .dispatch import DeployedSignature
    from .network import BacklogEntry, DeployedContract, Network

    if obj.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot version {obj.get('version')!r}")
    net = Network._from_config(obj["config"], executor=executor,
                               lane_workers=lane_workers,
                               metrics=metrics, tracer=tracer,
                               state_backend=state_backend)
    net.epoch = obj["epoch"]
    if net.metrics.enabled and obj.get("metrics") is not None:
        net.metrics.reset_to(obj["metrics"])
    from .lanes import transition_footprints
    for addr, payload in obj["contracts"].items():
        result = run_pipeline_cached(payload["source"], addr)
        state = state_from_obj(payload["state"],
                               backend=net.state_backend)
        state.journal = net.journal
        net._adopt_state(state)
        signature = (signature_from_obj(payload["signature"])
                     if payload["signature"] is not None else None)
        footprints = (transition_footprints(result.summaries)
                      if signature is not None else None)
        net.contracts[addr] = DeployedContract(
            addr, result.module, Interpreter(result.module), state,
            signature, payload["source"], footprints)
        net.dispatcher.register_contract(DeployedSignature(
            addr, signature, dict(state.immutables)))
    from .transaction import Account
    net.accounts = {
        addr: Account(addr, balance,
                      {int(shard): amount
                       for shard, amount in portions.items()})
        for addr, (balance, portions) in obj["accounts"].items()}
    nonces = obj["nonces"]
    net.nonces.used = {s: set(v) for s, v in nonces["used"].items()}
    net.nonces.last_global = dict(nonces["last_global"])
    net.nonces.last_per_lane = {(s, lane): v for s, lane, v
                                in nonces["last_per_lane"]}
    net.backlog = [BacklogEntry(transaction_from_obj(tx), retries,
                                not_before)
                   for tx, retries, not_before in obj["backlog"]]
    net.dead_letter = [transaction_from_obj(tx)
                       for tx in obj["dead_letter"]]
    from .supervise import BoundedLog
    net.executor_fallbacks = obj["counters"]["executor_fallbacks"]
    net.epoch_tags = dict(obj["counters"]["epoch_tags"])
    net.executor_fallback_details = BoundedLog(
        obj["executor_fallback_details"],
        dropped=obj["counters"].get("executor_fallback_dropped", 0))
    net.wal_notes = list(obj["notes"])
    injector_obj = obj.get("injector")
    if injector_obj is not None and net.injector is not None:
        net.injector.injected = injector_obj["injected"]
        net.injector.skipped = injector_obj["skipped"]
        net.injector.dropped = [transaction_from_obj(tx)
                                for tx in injector_obj["dropped"]]
    mempool_obj = obj.get("mempool")
    if mempool_obj is not None:
        # Pending service-pool entries; WAL replay past the snapshot
        # adds/removes against this and ServiceLoop.adopt drains it.
        net.restored_mempool = {
            entry["tx"]["id"]: entry
            for entry in mempool_obj["entries"]}
    return net


# --------------------------------------------------------------------------
# Durable storage (atomic writes, digest validation, retention).
# --------------------------------------------------------------------------

def _digest(obj: Any) -> str:
    return hashlib.sha256(
        json.dumps(obj, sort_keys=True).encode()).hexdigest()


class SnapshotStore:
    """Durable, atomically-written, digest-checked epoch snapshots."""

    def __init__(self, data_dir: str | os.PathLike, keep: int = 3):
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.dir = Path(data_dir)
        self.dir.mkdir(parents=True, exist_ok=True)
        self.keep = keep

    def _path(self, epoch: int, wal_seq: int) -> Path:
        return self.dir / (f"{SNAPSHOT_PREFIX}{epoch:010d}-"
                           f"{wal_seq:010d}{SNAPSHOT_SUFFIX}")

    def paths(self) -> list[Path]:
        """Snapshot files, oldest first (temp files excluded)."""
        return sorted(p for p in self.dir.iterdir()
                      if p.name.startswith(SNAPSHOT_PREFIX)
                      and p.name.endswith(SNAPSHOT_SUFFIX))

    def _backend_path(self, epoch: int, wal_seq: int) -> Path:
        return self.dir / (f"{BACKEND_PREFIX}{epoch:010d}-"
                           f"{wal_seq:010d}{BACKEND_SUFFIX}")

    def backend_paths(self) -> list[Path]:
        """Backend sidecar files, oldest first (the live page store —
        ``state.sqlite`` — is not a sidecar and is excluded)."""
        return sorted(p for p in self.dir.iterdir()
                      if p.name.startswith(BACKEND_PREFIX)
                      and p.name.endswith(BACKEND_SUFFIX))

    def save_backend(self, backend, epoch: int, wal_seq: int) -> dict:
        """Persist a consistent copy of the external page store as a
        snapshot sidecar, returning the descriptor the snapshot JSON
        embeds (``{"kind", "file", "digest"}``).

        Written *before* the snapshot JSON: the JSON pins the sidecar's
        logical digest, so a crash between the two leaves an orphan
        sidecar (harmless, reclaimed by :meth:`compact`) rather than a
        snapshot pointing at a missing or torn file.
        """
        target = self._backend_path(epoch, wal_seq)
        try:
            digest = backend.save_copy(str(target))
        except OSError as exc:
            raise StoreError(
                f"backend sidecar write failed for {target.name}: "
                f"{type(exc).__name__}: {exc}") from exc
        return {"kind": backend.kind, "file": target.name,
                "digest": digest}

    def restore_backend(self, snap: Any | None, data_dir: str):
        """Rebuild the page-store backend a snapshot was taken against.

        With a ``backend`` section the referenced sidecar is digest-
        verified and copied over the live page store; a missing,
        unreadable, or digest-mismatched sidecar is a hard
        :class:`StoreError` — never a silent fall-back to an empty
        store, which would resume with silently truncated state.
        Without a section, the ``REPRO_STATE_BACKEND`` environment
        knob decides (possibly no backend at all, returning ``None``).
        """
        from ..scilla.backend import SqliteBackend, resolve_backend
        info = (snap or {}).get("backend")
        if info is None:
            return resolve_backend(None, data_dir)
        if info.get("kind") != "sqlite":
            raise StoreError(
                f"snapshot pins unsupported backend kind "
                f"{info.get('kind')!r}")
        sidecar = self.dir / info["file"]
        if not sidecar.is_file():
            raise StoreError(
                f"snapshot references missing backend sidecar "
                f"{info['file']}")
        try:
            digest = SqliteBackend.digest_path(str(sidecar))
        except ValueError as exc:
            raise StoreError(
                f"backend sidecar {info['file']} is unreadable: "
                f"{exc}") from exc
        if digest != info["digest"]:
            raise StoreError(
                f"backend sidecar {info['file']} digest mismatch "
                f"(have {digest[:12]}, snapshot pins "
                f"{info['digest'][:12]}): refusing torn/stale pages")
        live = os.path.join(data_dir, BACKEND_LIVE_NAME)
        # The live file is scratch (rebuilt here); drop any sqlite
        # journal remnants from the crashed run alongside it.
        for leftover in (live, live + "-journal", live + "-wal",
                         live + "-shm"):
            try:
                os.unlink(leftover)
            except OSError:
                pass
        try:
            shutil.copyfile(sidecar, live)
        except OSError as exc:
            raise StoreError(
                f"restoring backend sidecar {info['file']} failed: "
                f"{type(exc).__name__}: {exc}") from exc
        return SqliteBackend(live)

    def save(self, obj: Any) -> Path:
        """Atomically persist one snapshot object (write-temp, fsync,
        rename, fsync directory).  An ``OSError`` anywhere in the
        sequence surfaces as :class:`StoreError`; the temp file is
        removed best-effort and the previous snapshot set is intact.
        """
        target = self._path(obj["epoch"], obj["wal_seq"])
        body = json.dumps({"digest": _digest(obj), "snapshot": obj})
        tmp = target.with_name(target.name + ".tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(body)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, target)
            fd = os.open(self.dir, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
        except OSError as exc:
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            raise StoreError(
                f"snapshot write failed for {target.name}: "
                f"{type(exc).__name__}: {exc}") from exc
        return target

    def load_newest(self) -> Any | None:
        """The newest snapshot whose digest verifies, or ``None``.

        Unreadable or tampered snapshot files are skipped (older
        snapshots plus a longer WAL replay still recover the state).
        """
        for path in reversed(self.paths()):
            try:
                body = json.loads(path.read_text(encoding="utf-8"))
                obj = body["snapshot"]
                if body["digest"] == _digest(obj):
                    return obj
            except (OSError, ValueError, KeyError, TypeError):
                continue
        return None

    def compact(self) -> list[str]:
        """Drop all but the newest ``keep`` snapshots, plus any
        backend sidecars whose paired snapshot is gone (same
        ``epoch-walseq`` stem); returns the deleted file names."""
        paths = self.paths()
        deleted = []
        for path in paths[:-self.keep] if len(paths) > self.keep else []:
            path.unlink()
            deleted.append(path.name)
        kept_stems = {
            p.name[len(SNAPSHOT_PREFIX):-len(SNAPSHOT_SUFFIX)]
            for p in self.paths()}
        for sidecar in self.backend_paths():
            stem = sidecar.name[len(BACKEND_PREFIX):-len(BACKEND_SUFFIX)]
            if stem not in kept_stems:
                try:
                    sidecar.unlink()
                except OSError:
                    continue
                deleted.append(sidecar.name)
        return deleted
