"""MicroBlocks, FinalBlocks and receipts (Fig. 10's data artefacts)."""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from .delta import StateDelta
from .transaction import Transaction


@dataclass
class Receipt:
    """Outcome of one transaction."""

    tx: Transaction
    success: bool
    gas_used: int
    shard: int              # -1 = DS committee
    error: str | None = None
    events: list = dc_field(default_factory=list)


@dataclass
class MicroBlock:
    """Transactions one shard committed in an epoch, plus its deltas."""

    shard: int
    epoch: int
    receipts: list[Receipt] = dc_field(default_factory=list)
    deltas: list[StateDelta] = dc_field(default_factory=list)
    gas_used: int = 0

    @property
    def n_committed(self) -> int:
        return sum(1 for r in self.receipts if r.success)


@dataclass
class FinalBlock:
    """The DS committee's combination of all MicroBlocks (FB + FSD)."""

    epoch: int
    microblocks: list[MicroBlock] = dc_field(default_factory=list)
    ds_receipts: list[Receipt] = dc_field(default_factory=list)
    merged_locations: int = 0
    epoch_seconds: float = 0.0
    stats: object = None  # EpochStats: dispatch routing breakdown
    # Human-readable log of the faults injected / detected while this
    # epoch was being finalised, in deterministic order.
    fault_log: list[str] = dc_field(default_factory=list)
    # Lanes the DS committee excluded after a timeout or a rejected
    # delta, mapped to the reason (``crash``, ``delay-microblock``, …).
    excluded_lanes: dict[int, str] = dc_field(default_factory=dict)
    # The WAL tag the epoch committed under ("epoch", "setup",
    # "serve", …) — lets reporting separate service-mode epochs from
    # setup/measurement ones (Network.average_tps(tag=...)).
    tag: str = "epoch"

    @property
    def all_receipts(self) -> list[Receipt]:
        out: list[Receipt] = []
        for mb in self.microblocks:
            out.extend(mb.receipts)
        out.extend(self.ds_receipts)
        return out

    @property
    def n_committed(self) -> int:
        return sum(1 for r in self.all_receipts if r.success)

    @property
    def tps(self) -> float:
        if self.epoch_seconds <= 0:
            return 0.0
        return self.n_committed / self.epoch_seconds
