"""State deltas and the DS committee's three-way merge (Sec. 4.3).

Each shard accumulates, per contract, the changes its transactions
made relative to the epoch-start state.  For ``IntMerge`` fields the
delta is the *signed integer difference*; for ``OwnOverwrite`` fields
it is the final value (or a deletion marker).  The DS committee merges
all shard deltas into the epoch-start state; because ownership
constraints made the deltas logically disjoint, the merge is a total,
deterministic, commutative and associative operation — the partial
commutative monoid of Sec. 2.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from ..core.joins import (
    JoinKind, MergeConflict, apply_int_delta, int_delta,
)
from ..scilla.state import ContractState, MISSING, StateKey, _Missing
from ..scilla.values import IntVal, MapVal, Value


@dataclass(frozen=True)
class DeltaEntry:
    """One changed state location in a shard's delta."""

    key: StateKey
    kind: JoinKind
    # OwnOverwrite payload: the new value (MISSING = deleted).
    new_value: Value | _Missing = MISSING
    # IntMerge payload: the signed difference from the epoch-start value,
    # plus a template value carrying the integer type.
    int_diff: int = 0
    template: Value | None = None


@dataclass
class StateDelta:
    """All changes one shard made to one contract during an epoch."""

    contract: str
    shard: int
    entries: list[DeltaEntry] = dc_field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)


def compute_delta(contract: str, shard: int, base: ContractState,
                  final: ContractState, touched: set[StateKey],
                  joins: dict[str, JoinKind]) -> StateDelta:
    """Diff the shard-local final state against the epoch-start state.

    Only ``touched`` locations (union of successful transactions'
    write sets) are inspected, so the cost is proportional to activity
    rather than state size — matching the paper's per-changed-field
    merge cost accounting.
    """
    delta = StateDelta(contract, shard)
    for key in sorted(touched, key=_key_sort):
        kind = joins.get(key[0], JoinKind.OWN_OVERWRITE)
        new = final.read(key)
        old = base.read(key)
        if kind is JoinKind.INT_MERGE:
            if not isinstance(new, (IntVal, _Missing)) or \
                    not isinstance(old, (IntVal, _Missing)):
                raise MergeConflict(
                    f"IntMerge declared for non-integer location {key}",
                    contract=contract, key=key, shards=(shard,))
            diff = int_delta(old, new)
            if diff == 0:
                continue
            template = new if isinstance(new, IntVal) else old
            assert isinstance(template, IntVal)
            delta.entries.append(DeltaEntry(key, kind, int_diff=diff,
                                            template=template))
        else:
            if _values_same(old, new):
                continue
            delta.entries.append(DeltaEntry(key, kind, new_value=new))
    return delta


def merge_deltas(base: ContractState,
                 deltas: list[StateDelta]) -> tuple[ContractState, int]:
    """Three-way merge: epoch-start state ⊎ all shard deltas.

    Returns the merged state and the number of changed locations (the
    unit in which Sec. 5.2.2 reports merge cost).  Raises
    :class:`MergeConflict` if two shards overwrote the same location —
    impossible under a valid signature, by construction.
    """
    merged = base.copy()
    overwritten: dict[StateKey, int] = {}
    int_accum: dict[StateKey, tuple[int, Value]] = {}
    changed = 0
    int_shards: dict[StateKey, list[int]] = {}
    for delta in deltas:
        for entry in delta.entries:
            changed += 1
            if entry.kind is JoinKind.INT_MERGE:
                diff, template = int_accum.get(entry.key, (0, entry.template))
                assert entry.template is not None
                int_accum[entry.key] = (diff + entry.int_diff, entry.template)
                int_shards.setdefault(entry.key, []).append(delta.shard)
                if entry.key in overwritten:
                    raise MergeConflict(
                        f"shard {delta.shard} merges into {entry.key} "
                        f"overwritten by shard {overwritten[entry.key]}",
                        contract=delta.contract, key=entry.key,
                        shards=(overwritten[entry.key], delta.shard))
            else:
                prev = overwritten.get(entry.key)
                if prev is not None and prev != delta.shard:
                    raise MergeConflict(
                        f"shards {prev} and {delta.shard} both overwrote "
                        f"{entry.key}",
                        contract=delta.contract, key=entry.key,
                        shards=(prev, delta.shard))
                if entry.key in int_accum:
                    raise MergeConflict(
                        f"shard {delta.shard} overwrites {entry.key} "
                        f"also merged into by another shard",
                        contract=delta.contract, key=entry.key,
                        shards=(*int_shards.get(entry.key, ()),
                                delta.shard))
                overwritten[entry.key] = delta.shard
                merged.write(entry.key, entry.new_value)
    for key, (diff, template) in int_accum.items():
        merged.write(key, apply_int_delta(base.read(key), diff, template))
    return merged, changed


def _key_sort(key: StateKey):
    name, keys = key
    return (name, tuple(str(k) for k in keys))


def _values_same(a: Value | _Missing, b: Value | _Missing) -> bool:
    if isinstance(a, _Missing) or isinstance(b, _Missing):
        return isinstance(a, _Missing) and isinstance(b, _Missing)
    if isinstance(a, MapVal) and isinstance(b, MapVal):
        return a.entries == b.entries
    return a == b
