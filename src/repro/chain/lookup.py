"""Lookup nodes (Fig. 10): the entry point of the network.

Users submit transactions to lookup nodes, which group them into
*packets* and dispatch each packet to one of the shards or the DS
committee.  This module implements that buffering layer on top of
:class:`~repro.chain.dispatch.Dispatcher`; the
:class:`~repro.chain.network.Network` can consume the packets of an
epoch directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from .dispatch import DS, DispatchDecision, Dispatcher
from .transaction import Transaction


@dataclass
class TxPacket:
    """A batch of transactions destined for one processing lane."""

    destination: int               # shard id, or DS (-1)
    txns: list[Transaction] = dc_field(default_factory=list)

    def __len__(self) -> int:
        return len(self.txns)

    @property
    def is_ds(self) -> bool:
        return self.destination == DS


class LookupNode:
    """Buffers submitted transactions and packs them per destination.

    ``max_packet_size`` mirrors the real network's packet cap: large
    queues are split into multiple packets for the same lane (shards
    process them in arrival order, so per-sender ordering within a
    lane is preserved).
    """

    def __init__(self, dispatcher: Dispatcher,
                 max_packet_size: int = 1_000):
        self.dispatcher = dispatcher
        self.max_packet_size = max_packet_size
        self._buffer: list[tuple[Transaction, DispatchDecision]] = []
        self.submitted = 0

    def submit(self, tx: Transaction) -> DispatchDecision:
        """Accept one transaction; routing happens immediately."""
        decision = self.dispatcher.dispatch(tx)
        self._buffer.append((tx, decision))
        self.submitted += 1
        return decision

    def pending(self) -> int:
        return len(self._buffer)

    def build_packets(self) -> list[TxPacket]:
        """Drain the buffer into per-destination packets.

        Within a destination the submission order is preserved, so the
        relaxed nonce rule (increasing order per lane) is satisfiable
        whenever users submit in increasing nonce order.
        """
        by_destination: dict[int, list[Transaction]] = {}
        for tx, decision in self._buffer:
            by_destination.setdefault(decision.shard, []).append(tx)
        self._buffer.clear()
        packets: list[TxPacket] = []
        for destination in sorted(by_destination):
            queue = by_destination[destination]
            for start in range(0, len(queue), self.max_packet_size):
                packets.append(TxPacket(
                    destination,
                    queue[start:start + self.max_packet_size]))
        return packets


def packets_to_epoch(packets: list[TxPacket]) -> list[Transaction]:
    """Flatten packets back into an epoch's transaction list, keeping
    per-lane order (used to feed :meth:`Network.process_epoch`)."""
    out: list[Transaction] = []
    for packet in packets:
        out.extend(packet.txns)
    return out
