"""Lookup-node transaction dispatch (Sec. 4.3).

``dispatch_oc(T, x)``: given a contract's sharding signature and a
concrete transaction, resolve the symbolic constraints against the
transaction's arguments and identify a shard that satisfies all of
them; route to the DS committee when no single shard does (or when a
runtime side-condition such as ``NoAliases`` fails).

State components are assigned to shards by hashing: entry-level for
fields only ever owned per-entry, field-level as soon as some selected
transition requires whole-field ownership (so a whole-field owner and
an entry writer can never land in different shards).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field as dc_field

from ..core.constraints import (
    Bot, ContractShard, NoAliases, Owns, SenderShard, UserAddr,
)
from ..core.domain import ConstKey, Key, ParamKey, PseudoField
from ..core.signature import ShardingSignature
from ..scilla.values import (
    ADTVal, BNumVal, ByStrVal, IntVal, StringVal, Value,
)
from .transaction import Transaction

DS = -1  # the DS committee "shard" id


def key_token(value: Value) -> str:
    """A stable string identity for a runtime value used as a map key.

    Must agree with the constant-key format produced by the analysis
    (``repro.core.summary._const_repr``).
    """
    if isinstance(value, IntVal):
        return f"{value.typ}|{value.value}"
    if isinstance(value, StringVal):
        return f"String|{value.value}"
    if isinstance(value, ByStrVal):
        return f"{value.typ}|{value.hex}"
    if isinstance(value, BNumVal):
        return f"BNum|{value.value}"
    if isinstance(value, ADTVal):
        inner = ",".join(key_token(a) for a in value.args)
        return f"{value.adt}.{value.constructor}({inner})"
    raise ValueError(f"value not usable as a map key: {value!r}")


def shard_hash(token: str, n_shards: int) -> int:
    digest = hashlib.sha256(token.encode()).digest()
    return int.from_bytes(digest[:8], "big") % n_shards


@dataclass
class DispatchDecision:
    shard: int
    reason: str = ""

    @property
    def is_ds(self) -> bool:
        return self.shard == DS


@dataclass
class DeployedSignature:
    """What the lookup node knows about a deployed contract."""

    address: str
    signature: ShardingSignature | None
    immutables: dict[str, Value] = dc_field(default_factory=dict)

    def field_level(self) -> set[str]:
        """Fields that must be assigned to shards whole (some selected
        transition requires full ownership)."""
        if self.signature is None:
            return set()
        out: set[str] = set()
        for cs in self.signature.constraints.values():
            for c in cs:
                if isinstance(c, Owns) and c.pf.is_whole_field:
                    out.add(c.pf.field)
        return out


class Dispatcher:
    """Routes transactions to shards; CoSplit-aware when signatures
    are registered, falling back to the default strategy otherwise."""

    def __init__(self, n_shards: int, use_signatures: bool = True):
        self.n_shards = n_shards
        self.use_signatures = use_signatures
        self.contracts: dict[str, DeployedSignature] = {}
        self._field_level_cache: dict[str, set[str]] = {}

    # -- registration ---------------------------------------------------------

    def register_contract(self, deployed: DeployedSignature) -> None:
        self.contracts[deployed.address] = deployed
        self._field_level_cache[deployed.address] = deployed.field_level()

    def is_contract(self, address: str) -> bool:
        return address in self.contracts

    # -- shard assignment primitives --------------------------------------------

    def home_shard(self, address: str) -> int:
        return shard_hash(f"addr:{_pad(address)}", self.n_shards)

    def component_shard(self, contract: str, pf: PseudoField,
                        key_values: tuple[str, ...]) -> int:
        """Shard owning a state component.

        Entry-level components are assigned by their *first* key value,
        so components keyed by the same account co-locate (Fig. 3 puts
        ``bal[A]`` and ``allowances[A][D]`` in one shard, which is what
        lets TransferFrom satisfy both constraints in a single shard).
        Fields requiring whole-field ownership are assigned as a unit.

        The contract address is normalised first, so dispatch (which
        sees the transaction's possibly short-form ``to``) and the DS
        committee's delta validation (which sees the deployed address)
        agree on the assignment.
        """
        contract = _pad(contract)
        if not key_values or pf.field in self._field_level_cache.get(
                contract, set()):
            token = f"{contract}:{pf.field}"
        else:
            first = key_values[0]
            if first.startswith("ByStr20|"):
                # Components keyed by an account address live in that
                # account's home shard, so Owns(bal[_sender]) and
                # SenderShard (fund acceptance) agree — the paper's
                # "the shard that owns A's account" model.
                token = f"addr:{first.removeprefix('ByStr20|')}"
            else:
                token = f"{contract}:{first}"
        return shard_hash(token, self.n_shards)

    # -- constraint resolution ------------------------------------------------------

    def _resolve_key(self, key: Key, tx: Transaction,
                     deployed: DeployedSignature) -> str | None:
        if isinstance(key, ParamKey):
            if key.name in ("_sender", "_origin"):
                return f"ByStr20|{_pad(tx.sender)}"
            value = tx.args_dict().get(key.name)
            return key_token(value) if value is not None else None
        assert isinstance(key, ConstKey)
        if key.repr.startswith("cparam:"):
            value = deployed.immutables.get(key.repr.removeprefix("cparam:"))
            return key_token(value) if value is not None else None
        if key.repr == "_this_address":
            return f"ByStr20|{_pad(deployed.address)}"
        return key.repr  # literal in key_token format already

    def _resolve_symbol(self, symbol: str, tx: Transaction,
                        deployed: DeployedSignature) -> str | None:
        """Resolve a NoAliases/UserAddr symbol (textual key form)."""
        if symbol in ("_sender", "_origin"):
            return f"ByStr20|{_pad(tx.sender)}"
        value = tx.args_dict().get(symbol)
        if value is not None:
            return key_token(value)
        return self._resolve_key(ConstKey(symbol), tx, deployed)

    def _address_of_symbol(self, symbol: str, tx: Transaction,
                           deployed: DeployedSignature) -> str | None:
        token = self._resolve_symbol(symbol, tx, deployed)
        if token is None:
            return None
        if "|" in token:
            kind, _, payload = token.partition("|")
            if kind.startswith("ByStr"):
                return payload
        return None

    # -- main entry point ------------------------------------------------------------

    def dispatch(self, tx: Transaction) -> DispatchDecision:
        if not tx.is_contract_call:
            if self.is_contract(_pad(tx.to)):
                # Plain payments cannot carry a transition; routing one
                # at a contract to the sender's shard would credit a
                # shadow user account there.  Send it to the DS, whose
                # execution rejects it with the same reason.
                return DispatchDecision(DS, "payment to contract")
            # User-to-user payment: sender's home shard (double-spend
            # detection stays local, Sec. 4.1).
            return DispatchDecision(self.home_shard(tx.sender), "payment")
        deployed = self.contracts.get(_pad(tx.to))
        if deployed is None:
            return DispatchDecision(DS, "unknown contract")
        if not self.use_signatures or deployed.signature is None:
            return self._default_strategy(tx, deployed)
        sig = deployed.signature
        if tx.transition not in sig.selected:
            return DispatchDecision(DS, "transition not sharded")
        constraints = sig.constraints[tx.transition]

        required: set[int] = set()
        for c in sorted(constraints, key=str):
            if isinstance(c, Bot):
                return DispatchDecision(DS, f"⊥: {c.reason}")
            if isinstance(c, SenderShard):
                required.add(self.home_shard(tx.sender))
            elif isinstance(c, ContractShard):
                required.add(self.home_shard(tx.to))
            elif isinstance(c, Owns):
                tokens = []
                for key in c.pf.keys:
                    token = self._resolve_key(key, tx, deployed)
                    if token is None:
                        return DispatchDecision(DS, f"unresolvable {c}")
                    tokens.append(token)
                required.add(
                    self.component_shard(tx.to, c.pf, tuple(tokens)))
            elif isinstance(c, NoAliases):
                a = self._resolve_symbol(c.x, tx, deployed)
                b = self._resolve_symbol(c.y, tx, deployed)
                if a is None or b is None or a == b:
                    return DispatchDecision(DS, f"aliasing keys {c}")
            elif isinstance(c, UserAddr):
                address = self._address_of_symbol(c.param, tx, deployed)
                if address is None or self.is_contract(address):
                    return DispatchDecision(DS, f"non-user recipient {c}")
        if len(required) > 1:
            return DispatchDecision(DS, "conflicting ownership")
        if required:
            return DispatchDecision(required.pop(), "constraints satisfied")
        # No placement constraints at all: any shard works.
        return DispatchDecision(tx.tx_id % self.n_shards, "unconstrained")

    def _default_strategy(self, tx: Transaction,
                          deployed: DeployedSignature) -> DispatchDecision:
        """Plain Zilliqa (Sec. 4.1): contract transactions run in the
        contract's shard only when the sender lives there; otherwise in
        the DS committee."""
        sender_home = self.home_shard(tx.sender)
        contract_home = self.home_shard(tx.to)
        if sender_home == contract_home:
            return DispatchDecision(contract_home, "co-located")
        return DispatchDecision(DS, "cross-shard contract call")


def _pad(address: str) -> str:
    body = address[2:] if address.startswith("0x") else address
    return "0x" + body.rjust(40, "0").lower()
