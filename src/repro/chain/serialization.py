"""JSON wire formats for values, state deltas and sharding signatures.

In the real system (Sec. 5), CoSplit talks to the Zilliqa node over
JSON-RPC, and the paper attributes most of the measured dispatch/merge
overhead to serialisation and deserialisation.  This module provides
the equivalent wire formats: every runtime value, delta entry and
signature component round-trips through plain JSON, and the overheads
benchmark exercises these paths.
"""

from __future__ import annotations

import json
from typing import Any

from ..core.constraints import (
    Bot, Constraint, ContractShard, NoAliases, Owns, SenderShard,
    UserAddr,
)
from ..core.domain import ConstKey, Key, ParamKey, PseudoField
from ..core.joins import JoinKind
from ..core.signature import ShardingSignature
from ..scilla.errors import EvalError
from ..scilla.state import MISSING, ContractState, StateKey, _Missing
from ..scilla import types as ty
from ..scilla.values import (
    ADTVal, BNumVal, ByStrVal, IntVal, MapVal, StringVal, Value,
)
from .delta import DeltaEntry, StateDelta
from .transaction import Transaction


# --------------------------------------------------------------------------
# Values.
# --------------------------------------------------------------------------

def value_to_json(v: Value) -> Any:
    if isinstance(v, IntVal):
        return {"t": str(v.typ), "v": str(v.value)}
    if isinstance(v, StringVal):
        return {"t": "String", "v": v.value}
    if isinstance(v, ByStrVal):
        return {"t": str(v.typ), "v": v.hex}
    if isinstance(v, BNumVal):
        return {"t": "BNum", "v": str(v.value)}
    if isinstance(v, ADTVal):
        return {"t": "ADT", "adt": v.adt, "c": v.constructor,
                "targs": [str(t) for t in v.targs],
                "args": [value_to_json(a) for a in v.args]}
    if isinstance(v, MapVal):
        return {"t": "Map", "kt": str(v.key_type), "vt": str(v.value_type),
                "entries": [[value_to_json(k), value_to_json(val)]
                            for k, val in v.entries.items()]}
    raise EvalError(f"cannot serialise value {v!r}")


def value_from_json(data: Any) -> Value:
    from ..scilla.parser import parse_type_str
    t = data["t"]
    if t == "String":
        return StringVal(data["v"])
    if t == "BNum":
        return BNumVal(int(data["v"]))
    if t == "ADT":
        return ADTVal(data["adt"], data["c"],
                      tuple(parse_type_str(s) for s in data["targs"]),
                      tuple(value_from_json(a) for a in data["args"]))
    if t == "Map":
        out = MapVal(parse_type_str(data["kt"]),
                     parse_type_str(data["vt"]))
        for k, v in data["entries"]:
            out.entries[value_from_json(k)] = value_from_json(v)
        return out
    if t.startswith("ByStr"):
        return ByStrVal(data["v"], ty.PrimType(t))
    return IntVal(int(data["v"]), ty.PrimType(t))


# --------------------------------------------------------------------------
# State deltas (the StateDelta messages of Fig. 10).
# --------------------------------------------------------------------------

def _state_key_to_json(key: StateKey) -> Any:
    name, keys = key
    return [name, [value_to_json(k) for k in keys]]


def _state_key_from_json(data: Any) -> StateKey:
    name, keys = data
    return name, tuple(value_from_json(k) for k in keys)


def delta_to_json(delta: StateDelta) -> str:
    entries = []
    for e in delta.entries:
        entries.append({
            "key": _state_key_to_json(e.key),
            "kind": e.kind.value,
            "new": (None if isinstance(e.new_value, _Missing)
                    else value_to_json(e.new_value)),
            "diff": e.int_diff,
            "template": (value_to_json(e.template)
                         if e.template is not None else None),
        })
    return json.dumps({"contract": delta.contract, "shard": delta.shard,
                       "entries": entries})


def delta_from_json(text: str) -> StateDelta:
    data = json.loads(text)
    entries = []
    for e in data["entries"]:
        entries.append(DeltaEntry(
            key=_state_key_from_json(e["key"]),
            kind=JoinKind(e["kind"]),
            new_value=(MISSING if e["new"] is None
                       else value_from_json(e["new"])),
            int_diff=e["diff"],
            template=(value_from_json(e["template"])
                      if e["template"] is not None else None),
        ))
    return StateDelta(data["contract"], data["shard"], entries)


# --------------------------------------------------------------------------
# Transactions (the lookup-node packets of Fig. 10).
# --------------------------------------------------------------------------

def transaction_to_obj(tx: Transaction) -> Any:
    """JSON-able form of a transaction.

    The ``id`` field preserves ``tx_id`` across the process boundary:
    WAL replay must re-execute the *same* transactions, and the
    default dispatch strategy routes unconstrained calls by
    ``tx_id % n_shards``.
    """
    return {
        "sender": tx.sender, "to": tx.to, "nonce": tx.nonce,
        "amount": tx.amount, "gas_limit": tx.gas_limit,
        "gas_price": tx.gas_price, "transition": tx.transition,
        "args": [[k, value_to_json(v)] for k, v in tx.args],
        "id": tx.tx_id,
    }


def transaction_from_obj(data: Any) -> Transaction:
    kwargs = {}
    if data.get("id") is not None:
        kwargs["tx_id"] = data["id"]
    return Transaction(
        sender=data["sender"], to=data["to"], nonce=data["nonce"],
        amount=data["amount"], gas_limit=data["gas_limit"],
        gas_price=data["gas_price"], transition=data["transition"],
        args=tuple((k, value_from_json(v)) for k, v in data["args"]),
        **kwargs)


def transaction_to_json(tx: Transaction) -> str:
    return json.dumps(transaction_to_obj(tx))


def transaction_from_json(text: str) -> Transaction:
    return transaction_from_obj(json.loads(text))


# --------------------------------------------------------------------------
# Contract states (the payload of durable snapshots).
# --------------------------------------------------------------------------

def _paged_map_to_json(v: MapVal) -> Any:
    """Compact snapshot form of a paged map: a reference to its rows
    in the backend sidecar plus only the *unflushed* resident part
    (dirty overlay entries and tombstones).  Snapshotting therefore
    never forces a writeback — the sidecar carries the rows as of the
    last flush, and this record carries everything newer.
    """
    paged = v.entries
    return {
        "t": "PagedMap", "kt": str(v.key_type), "vt": str(v.value_type),
        "map_id": paged.map_id, "count": len(paged),
        "dirty": sorted(
            ([value_to_json(k), value_to_json(paged._local[k])]
             for k in paged._dirty),
            key=lambda kv: json.dumps(kv[0], sort_keys=True)),
        "deleted": sorted(
            (value_to_json(k) for k in paged._deleted),
            key=lambda k: json.dumps(k, sort_keys=True)),
    }


def _paged_map_from_json(data: Any, backend) -> MapVal:
    from ..scilla.backend import PagedDict
    from ..scilla.parser import parse_type_str
    if backend is None:
        raise EvalError(
            "snapshot contains PagedMap references but no state "
            "backend was restored to resolve them")
    backend.reserve(data["map_id"])
    paged = PagedDict(backend, data["map_id"], count=data["count"])
    for k, v in data["dirty"]:
        key = value_from_json(k)
        paged._local[key] = value_from_json(v)
        paged._dirty.add(key)
    for k in data["deleted"]:
        paged._deleted.add(value_from_json(k))
    return MapVal(parse_type_str(data["kt"]),
                  parse_type_str(data["vt"]), paged)


def state_to_obj(state: ContractState, backend=None) -> Any:
    """JSON-able form of a full contract state (snapshot format).

    With ``backend``, top-level map fields paged through *that*
    backend serialise as compact ``PagedMap`` references against its
    sidecar copy instead of inlining every entry.
    """
    fields = {}
    for name, value in state.fields.items():
        if (backend is not None and isinstance(value, MapVal)
                and getattr(value.entries, "backend", None) is backend):
            fields[name] = _paged_map_to_json(value)
        else:
            fields[name] = value_to_json(value)
    return {
        "address": state.address,
        "balance": state.balance,
        "fields": fields,
        "field_types": {name: str(typ)
                        for name, typ in state.field_types.items()},
        "immutables": {name: value_to_json(value)
                       for name, value in state.immutables.items()},
    }


def state_from_obj(data: Any, backend=None) -> ContractState:
    from ..scilla.parser import parse_type_str
    fields = {}
    for name, v in data["fields"].items():
        if isinstance(v, dict) and v.get("t") == "PagedMap":
            fields[name] = _paged_map_from_json(v, backend)
        else:
            fields[name] = value_from_json(v)
    return ContractState(
        address=data["address"],
        fields=fields,
        field_types={name: parse_type_str(s)
                     for name, s in data["field_types"].items()},
        immutables={name: value_from_json(v)
                    for name, v in data["immutables"].items()},
        balance=data["balance"],
    )


# --------------------------------------------------------------------------
# Sharding signatures (submitted with contract-deploying transactions).
# --------------------------------------------------------------------------

def _key_to_json(key: Key) -> Any:
    if isinstance(key, ParamKey):
        return {"k": "param", "name": key.name}
    return {"k": "const", "repr": key.repr}


def _key_from_json(data: Any) -> Key:
    if data["k"] == "param":
        return ParamKey(data["name"])
    return ConstKey(data["repr"])


def _pf_to_json(pf: PseudoField) -> Any:
    return {"field": pf.field, "keys": [_key_to_json(k) for k in pf.keys]}


def _pf_from_json(data: Any) -> PseudoField:
    return PseudoField(data["field"],
                       tuple(_key_from_json(k) for k in data["keys"]))


def _constraint_to_json(c: Constraint) -> Any:
    if isinstance(c, Owns):
        return {"c": "owns", "pf": _pf_to_json(c.pf)}
    if isinstance(c, UserAddr):
        return {"c": "useraddr", "param": c.param}
    if isinstance(c, NoAliases):
        return {"c": "noaliases", "x": c.x, "y": c.y}
    if isinstance(c, SenderShard):
        return {"c": "sendershard"}
    if isinstance(c, ContractShard):
        return {"c": "contractshard"}
    assert isinstance(c, Bot)
    return {"c": "bot", "reason": c.reason}


def _constraint_from_json(data: Any) -> Constraint:
    kind = data["c"]
    if kind == "owns":
        return Owns(_pf_from_json(data["pf"]))
    if kind == "useraddr":
        return UserAddr(data["param"])
    if kind == "noaliases":
        return NoAliases(data["x"], data["y"])
    if kind == "sendershard":
        return SenderShard()
    if kind == "contractshard":
        return ContractShard()
    return Bot(data["reason"])


def signature_to_obj(sig: ShardingSignature) -> Any:
    return {
        "contract": sig.contract,
        "selected": list(sig.selected),
        "constraints": {
            t: [_constraint_to_json(c) for c in sorted(cs, key=str)]
            for t, cs in sig.constraints.items()
        },
        "joins": {f: j.value for f, j in sig.joins.items()},
        "weak_reads": sorted(sig.weak_reads),
    }


def signature_from_obj(data: Any) -> ShardingSignature:
    return ShardingSignature(
        contract=data["contract"],
        selected=tuple(data["selected"]),
        constraints={
            t: frozenset(_constraint_from_json(c) for c in cs)
            for t, cs in data["constraints"].items()
        },
        joins={f: JoinKind(j) for f, j in data["joins"].items()},
        weak_reads=frozenset(data["weak_reads"]),
    )


def signature_to_json(sig: ShardingSignature) -> str:
    return json.dumps(signature_to_obj(sig))


def signature_from_json(text: str) -> ShardingSignature:
    return signature_from_obj(json.loads(text))
