"""The continuous service loop: mempool → epochs, forever.

``ServiceLoop`` turns the batch simulator into a long-running ingestion
service.  Producers call :meth:`submit` (admission control answers with
a typed receipt — see :mod:`repro.chain.mempool`); each :meth:`tick`
drains one adaptive batch into ``Network.process_epoch`` and feeds the
outcomes back:

* committed / failed receipts retire their pool entries terminally;
* gas-deferred transactions re-enter the pool at the front of their
  sender's queue, up to ``max_deferrals``, then dead-letter;
* anything injected churn removed is closed out as ``DROPPED``;
* over-capacity after re-admission sheds deterministically.

Degradation ladder under sustained overload (docs/SERVICE.md): first
the batch size shrinks toward the observed commit rate (bounding
per-epoch latency), then backpressure refuses new admissions above the
high-water mark, and only then does the pool shed already-admitted
work — never silently.

Durability: the loop requires ``carry_backlog=False`` so deferral
outcomes are explicit in-block receipts — WAL replay of the epoch
records then reproduces exactly the live decisions, with no backlog
carried *between* replayed epochs that the live loop had already
re-queued (that double-execution is the failure mode the requirement
exists to prevent).  Admissions are journaled as ``svc-admit`` records
and flushed (with an fsync) at the next tick or :meth:`sync`, before
the epoch that drains them executes; sheds and dead-letters are
``svc-terminal`` records.  ``Network.resume`` rebuilds the pending set
from snapshot + WAL and the adopting ServiceLoop restores it into a
fresh mempool.

Overload fault modes (:mod:`repro.chain.faults`): ``STALL_CONSUMER``
freezes a tick (the loop consults the network's injector, keyed by
tick index); ``FLOOD`` multiplies the *offered* load and is applied by
the driver (:func:`repro.eval.service.run_service`) via
``FaultInjector.flood_multiplier``.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from .mempool import (
    Mempool, MempoolConfig, PoolEntry, SubmitReceipt, TerminalKind,
)
from .transaction import Transaction

# Marks a failure receipt that means "ran out of epoch gas, retry"
# rather than "executed and failed" (see Network._process_epoch).
DEFERRED_ERROR_PREFIX = "deferred:"


@dataclass
class ServiceConfig:
    """Service-loop tuning knobs (docs/SERVICE.md, "Tuning")."""

    batch_max: int = 256       # epoch batch ceiling (and idle default)
    batch_min: int = 8         # never shrink the batch below this
    headroom: float = 1.25     # batch target = commit-rate x headroom
    max_deferrals: int = 12    # gas deferrals before dead-lettering
    auto_fund: bool = True     # create unknown sender accounts at admission
    record_committed: bool = False  # keep per-epoch committed batches
    keep_blocks: int | None = 256   # trim net.blocks beyond this many
    wal_tag: str = "serve"


@dataclass
class TickReport:
    """What one service tick did."""

    tick: int
    epoch: int | None = None   # network epoch processed (None: no epoch)
    stalled: bool = False      # STALL_CONSUMER froze this tick
    idle: bool = False         # pool and batch were empty
    drained: int = 0
    committed: int = 0
    failed: int = 0
    deferred: int = 0
    dead_lettered: int = 0
    dropped: int = 0
    shed: int = 0
    occupancy: int = 0
    batch_size: int = 0
    backpressure: bool = False
    epoch_seconds: float = 0.0


class ServiceLoop:
    """Drains an admission-controlled mempool into network epochs."""

    def __init__(self, net, mempool: Mempool | None = None,
                 config: ServiceConfig | None = None,
                 pool_config: MempoolConfig | None = None):
        if net.carry_backlog:
            raise ValueError(
                "ServiceLoop requires carry_backlog=False: the loop "
                "re-queues deferrals itself, and a network-side "
                "backlog would double-execute them on WAL replay")
        self.net = net
        self.config = config or ServiceConfig()
        self.mempool = mempool if mempool is not None else Mempool(
            pool_config, metrics=net.metrics)
        net.mempool = self.mempool       # snapshots embed the pool
        self.tick_index = 0
        self.batch_size = self.config.batch_max
        # Accumulators that survive block trimming (keep_blocks).
        self.served_committed = 0
        self.served_seconds = 0.0
        self.idle_ticks = 0
        self.stalled_ticks = 0
        self.max_occupancy = 0
        # Per-epoch committed batches, in drained order — the serial
        # replay oracle's input (tests/test_service_differential.py).
        self.committed_epochs: list[list[Transaction]] = []
        # Journal buffers, flushed (fsynced) at the next tick boundary
        # or sync(): admissions must hit the WAL before the epoch that
        # drains them.
        self._admit_buffer: list[PoolEntry] = []
        self._terminal_buffer: dict[str, list[int]] = {}
        self._meters = (_ServiceMeters(net.metrics)
                        if net.metrics.enabled else None)
        if net.restored_mempool:
            self._adopt_restored()

    # -- ingestion ---------------------------------------------------------

    def submit(self, tx: Transaction) -> SubmitReceipt:
        """Admit one producer submission (and journal it)."""
        receipt = self.mempool.submit(tx)
        if receipt.admitted:
            if self.config.auto_fund and \
                    tx.sender not in self.net.accounts and \
                    tx.sender not in self.net.contracts:
                # Unknown senders get a funded gas account at the door
                # (a WAL-logged input, so resume re-creates it).  With
                # population 10^5-10^6 this is what makes setup O(1)
                # per *touched* sender instead of O(population).
                self.net.create_account(tx.sender)
            queue = self.mempool.queues[tx.sender]
            self._admit_buffer.append(queue[-1])
        return receipt

    def sync(self) -> None:
        """Make every issued admission receipt durable now (one fsync).
        Without an explicit sync, durability rides the next tick's
        epoch barrier."""
        self._flush_journal(barrier=True)

    # -- the loop ----------------------------------------------------------

    def tick(self) -> TickReport:
        """One service iteration: journal, drain, execute, settle."""
        self.tick_index += 1
        pool = self.mempool
        pool.now_tick = self.tick_index
        self._flush_journal(barrier=False)  # epoch barrier covers it
        report = TickReport(tick=self.tick_index,
                            batch_size=self.batch_size)

        injector = self.net.injector
        if injector is not None and \
                injector.consumer_stalled(self.tick_index):
            # The consumer is wedged for one tick: no drain, no epoch.
            # Producers keep submitting; occupancy climbs; the modeled
            # clock still pays an epoch of consensus time.
            self.stalled_ticks += 1
            report.stalled = True
            self._charge_idle_tick()
            if self._meters:
                self._meters.stalls.inc()
            return self._settle(report)

        batch = pool.drain(self.batch_size)
        report.drained = len(batch)
        if not batch:
            self.idle_ticks += 1
            report.idle = True
            self._charge_idle_tick()
            if self._meters:
                self._meters.idle_ticks.inc()
            return self._settle(report)

        block = self.net.process_epoch(batch,
                                       wal_tag=self.config.wal_tag)
        report.epoch = block.epoch
        report.epoch_seconds = block.epoch_seconds
        self._absorb_outcomes(block, batch, report)
        self.served_committed += report.committed
        self.served_seconds += block.epoch_seconds
        pool.note_drain_rate(report.committed)
        self._trim_blocks()
        return self._settle(report)

    def run(self, ticks: int) -> list[TickReport]:
        return [self.tick() for _ in range(ticks)]

    def drain_remaining(self, max_ticks: int = 64) -> int:
        """Tick until the pool is empty (or the budget runs out);
        returns the number of ticks spent."""
        for spent in range(max_ticks):
            if self.mempool.occupancy == 0 and \
                    not self.mempool.inflight:
                return spent
            self.tick()
        return max_ticks

    # -- outcome settlement ------------------------------------------------

    def _absorb_outcomes(self, block, batch, report: TickReport) -> None:
        pool = self.mempool
        committed: list[Transaction] = []
        deferred: list[PoolEntry] = []
        committed_ids: set[int] = set()
        for receipt in block.all_receipts:
            tx_id = receipt.tx.tx_id
            entry = pool.inflight.get(tx_id)
            if entry is None:
                continue  # churn duplicate of a settled transaction
            if receipt.success:
                pool.resolve(tx_id, TerminalKind.COMMITTED)
                committed_ids.add(tx_id)
                report.committed += 1
            elif (receipt.error or "").startswith(DEFERRED_ERROR_PREFIX):
                deferred.append(pool.inflight.pop(tx_id))
            else:
                pool.resolve(tx_id, TerminalKind.FAILED)
                report.failed += 1
        if self.config.record_committed:
            committed = [tx for tx in batch if tx.tx_id in committed_ids]
            self.committed_epochs.append(committed)

        # Deferrals re-enter at the front of their sender's queue, or
        # dead-letter once their budget is spent.  Receipts arrive in
        # shard-lane order, so one sender's deferrals are not nonce-
        # sorted; readmitting in descending nonce order (per-sender
        # descending, since sorting preserves subsequences) makes each
        # appendleft rebuild an ascending queue.  Re-admissions are
        # journaled like admissions; dead-letters as terminals.
        deferred.sort(key=lambda e: e.tx.nonce, reverse=True)
        for entry in deferred:
            if entry.deferrals + 1 > self.config.max_deferrals:
                retired = pool.dead_letter(
                    entry.tx, entry.deferrals + 1,
                    entry.admit_tick, entry.admit_ns)
                self._buffer_terminal(retired, TerminalKind.DEAD_LETTERED)
                report.dead_lettered += 1
            else:
                pool.readmit(entry.tx, entry.deferrals + 1,
                             entry.admit_tick, entry.admit_ns)
                self._admit_buffer.append(
                    pool.queues[entry.tx.sender][0])
                report.deferred += 1

        # Close the books: drained entries that neither came back as a
        # receipt nor deferred were removed by injected mempool churn.
        for entry in pool.resolve_leftover_inflight():
            self._buffer_terminal(entry, TerminalKind.DROPPED)
            report.dropped += 1

    def _settle(self, report: TickReport) -> TickReport:
        pool = self.mempool
        # Shed only after re-admission (the end of the degradation
        # ladder); batch adaptation and backpressure come first.
        for entry in pool.shed_to_capacity():
            self._buffer_terminal(entry, TerminalKind.SHED)
            report.shed += 1
        report.backpressure = pool.update_backpressure()
        report.occupancy = pool.occupancy
        self.max_occupancy = max(self.max_occupancy, pool.occupancy)
        self._adapt_batch()
        if self._meters:
            self._meters.ticks.inc()
            self._meters.batch_size.set(self.batch_size)
        return report

    def _adapt_batch(self) -> None:
        """Shrink the batch toward the observed commit rate while the
        pool is saturated (bounding per-epoch latency and deferral
        churn under overload); recover multiplicatively once pressure
        clears.  The threshold is the *low*-water mark — the first
        rung of the degradation ladder, below the high-water mark
        where backpressure starts refusing admissions (were it the
        high mark, backpressure would cap occupancy right under the
        shrink trigger and this rung could never engage)."""
        cfg, pool = self.config, self.mempool
        if pool.occupancy >= max(pool.config.low_mark, 1):
            target = int(pool.drain_rate * cfg.headroom)
            self.batch_size = max(cfg.batch_min,
                                  min(cfg.batch_max, target))
        else:
            self.batch_size = min(cfg.batch_max,
                                  max(self.batch_size * 2,
                                      cfg.batch_min))

    def _charge_idle_tick(self) -> None:
        """An idle or stalled tick still burns an epoch's consensus
        time on the modeled clock; charging it keeps service TPS
        honest (Network.average_tps)."""
        cost = self.net.cost
        seconds = cost.epoch_seconds(
            shard_exec=[], ds_exec=0.0, merged_locations=0,
            shard_size=self.net.shard_size, ds_size=self.net.ds_size,
            n_dispatched=0, with_cosplit=self.net.use_signatures)
        self.net.note_idle_seconds(self.config.wal_tag, seconds)
        self.served_seconds += seconds

    # -- reporting ---------------------------------------------------------

    @property
    def tps(self) -> float:
        """Committed / modeled second over the whole service life,
        idle and stalled ticks included (trim-safe, unlike
        ``net.average_tps`` once ``keep_blocks`` starts dropping)."""
        if self.served_seconds <= 0:
            return 0.0
        return self.served_committed / self.served_seconds

    # -- durability --------------------------------------------------------

    def _flush_journal(self, barrier: bool) -> None:
        if self._terminal_buffer:
            for kind, ids in sorted(self._terminal_buffer.items()):
                self.net._wal_append("svc-terminal",
                                     {"kind": kind, "ids": ids})
            self._terminal_buffer = {}
        if self._admit_buffer:
            self.net._wal_append("svc-admit", {
                "entries": [e.to_obj() for e in self._admit_buffer],
            }, barrier=barrier)
            self._admit_buffer = []
        elif barrier and self.net.wal is not None:
            self.net.wal.barrier()

    def _buffer_terminal(self, entry: PoolEntry,
                         kind: TerminalKind) -> None:
        self._terminal_buffer.setdefault(kind.value, []).append(
            entry.tx.tx_id)

    def _adopt_restored(self) -> None:
        """Rebuild the pending pool from what resume recovered."""
        entries = [PoolEntry.from_obj(obj, seq=i)
                   for i, obj in enumerate(
                       self.net.restored_mempool.values())]
        floors = dict(self.net.nonces.last_global)
        self.mempool.restore(entries, nonce_floor=floors)
        self.net.restored_mempool = {}

    def _trim_blocks(self) -> None:
        keep = self.config.keep_blocks
        if keep is not None and len(self.net.blocks) > keep:
            del self.net.blocks[:len(self.net.blocks) - keep]


class _ServiceMeters:
    """Loop-level instruments (pool instruments live in the mempool)."""

    def __init__(self, metrics):
        self.ticks = metrics.counter("service.ticks")
        self.stalls = metrics.counter("service.stalled_ticks")
        self.idle_ticks = metrics.counter("service.idle_ticks")
        self.batch_size = metrics.gauge("service.batch_size")
