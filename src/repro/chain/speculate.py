"""Speculative commutativity-aware intra-shard scheduling.

The epoch barrier leaves the paper's last parallelism on the table:
inside one shard lane, transactions still execute strictly serially
even when their static footprints are disjoint.  This module closes
that gap with an *optimistic* scheduler (ROADMAP item 3):

1. **Lock sets from footprints.**  Every transaction gets a lock set
   derived from the deploy-time ``transition_footprints`` (reads ∪
   writes of the raw analysis summaries) resolved against the concrete
   arguments — the same resolution payload slicing performs — plus a
   sender-account lock (gas + nonce) and a contract-balance lock when
   the transition body can ``send`` (the only place contract balance
   is *read*).  A transaction whose accesses the analysis cannot bound
   (⊤ summary, or a contract deployed without a signature) gets no
   lock set and is executed on the strict serial path.

2. **Speculative windows.**  The lane queue is processed in rounds: a
   contiguous window of speculable transactions (one per sender — two
   transactions of one sender always conflict through the account
   lock, so pairing them only wastes work) each executes in a private
   :class:`_Sandbox` against copy-on-write forks of the lane state,
   optionally on a thread pool (``spec_workers``).

3. **In-order commit with exact conflict detection.**  Sandboxes are
   committed strictly in queue order; a transaction commits only if
   its lock set is disjoint from the *exact runtime effects* (journal
   write set, balance deltas, account deltas) of the transactions
   committed before it in the same round.  The committed set is
   therefore always a serial prefix of the queue — serial equivalence
   holds by construction, and a conflict needs no rollback at all:
   the conflicting sandbox (and everything after it) is simply
   discarded and retried in the next round.

4. **Bounded retries, strict-serial fallback.**  A transaction whose
   speculative execution is discarded ``spec_retries`` times flips the
   lane into strict serial order for the rest of the queue.  A
   commit-time inconsistency (defensive nonce re-check) rolls the
   whole round back — lane-fork writes via a private
   :class:`~repro.scilla.state.StateJournal` mark, account and nonce
   moves via explicit undo logs — and continues serially.  An
   unexpected crash inside the machinery *before any serial step ran*
   abandons the lane (full undo) and raises :class:`SpeculationError`,
   which the lane supervisor and the coordinator's serial loop treat
   as "redo this lane without speculation" (``supervise.py``,
   ``network.py``).

The differential battery (``tests/test_speculative_differential.py``),
the Hypothesis property suite (``tests/test_speculate_properties.py``)
and the footprint-soundness oracle (``tests/test_analysis_soundness.py``)
are the correctness story; ``docs/SCHEDULER.md`` is the prose version.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

from ..core.domain import ConstKey, Key, ParamKey
from ..scilla import types as ty
from ..scilla.ast import CallProc, Contract, MatchStmt, Send, Stmt
from ..scilla.interpreter import Interpreter
from ..scilla.state import ContractState, StateJournal, StateKey
from ..scilla.values import ByStrVal, Value
from .blocks import MicroBlock, Receipt
from .dispatch import _pad, key_token
from .lanes import _value_from_token
from .transaction import Account, NonceTracker, Transaction

_UNSET = object()


class SpeculationError(Exception):
    """Speculative lane execution gave up after restoring the
    pre-lane state; the caller must redo the lane without speculation
    (the restore makes that sound)."""


# --------------------------------------------------------------------------
# Lock sets.
#
# Lock tokens (lock sets contain only these four kinds):
#   ("acct", addr)             -- read/write of a user account
#   ("field", caddr, field)    -- whole contract field
#   ("key", caddr, field, tok) -- one top-level map entry
#   ("bal", caddr)             -- contract native balance (read+write)
#
# Effect tokens add credit-only and summary variants:
#   ("acct+", addr)            -- pure credit to a user account
#   ("bal+", caddr)            -- pure credit (accept) to a contract
#   ("key*", caddr, field)     -- marker: some entry of field written
# --------------------------------------------------------------------------

def _resolve_lock_key(key: Key, tx: Transaction, contract) -> Value | None:
    """Concrete runtime value of a symbolic footprint key — the same
    resolution ``lanes._resolve_key_value`` performs, but against the
    deployed contract itself (worker networks have no dispatcher
    registry, yet ``state.immutables`` always ships)."""
    if isinstance(key, ParamKey):
        if key.name in ("_sender", "_origin"):
            return ByStrVal(_pad(tx.sender), ty.BYSTR20)
        return tx.args_dict().get(key.name)
    assert isinstance(key, ConstKey)
    if key.repr.startswith("cparam:"):
        return contract.state.immutables.get(key.repr.removeprefix("cparam:"))
    if key.repr == "_this_address":
        return ByStrVal(_pad(contract.address), ty.BYSTR20)
    return _value_from_token(key.repr)


def _stmts_send(contract_ast: Contract, stmts: tuple[Stmt, ...],
                seen: set[str]) -> bool:
    for st in stmts:
        if isinstance(st, Send):
            return True
        if isinstance(st, MatchStmt):
            for _, body in st.clauses:
                if _stmts_send(contract_ast, body, seen):
                    return True
        elif isinstance(st, CallProc):
            if st.proc in seen:
                continue
            seen.add(st.proc)
            try:
                proc = contract_ast.component(st.proc)
            except KeyError:
                return True        # unknown procedure: be conservative
            if _stmts_send(contract_ast, proc.body, seen):
                return True
    return False


def transition_sends(contract, name: str) -> bool:
    """True iff the transition body (transitively through procedure
    calls) contains a ``send`` — the only construct that *reads*
    contract balance (the payout sufficiency check).  ``accept`` only
    credits, which merges additively and needs no lock."""
    cache = getattr(contract, "_spec_sends", None)
    if cache is None:
        cache = {}
        contract._spec_sends = cache
    hit = cache.get(name)
    if hit is not None:
        return hit
    module = contract.module
    if module is None:
        result = True              # no body to inspect: be conservative
    else:
        try:
            comp = module.contract.component(name)
        except KeyError:
            result = False         # unknown transition never executes
        else:
            result = _stmts_send(module.contract, comp.body, set())
    cache[name] = result
    return result


def transaction_lockset(net, tx: Transaction) -> frozenset | None:
    """The static lock set of one transaction, or ``None`` when its
    accesses cannot be bounded (strict serial path).

    Soundness rests on the footprint axiom — every location a
    transition reads or writes appears in ``transition_footprints``
    (tests/test_analysis_soundness.py is the end-to-end oracle) — plus
    the execution-substrate accesses the footprints don't cover: the
    sender account (gas + nonce), and contract balance for sending
    transitions.
    """
    sender_lock = ("acct", _pad(tx.sender))
    if not tx.is_contract_call:
        # Payments only *read* the sender (charge); the recipient is a
        # pure credit, covered by the committed acct+ effect tokens.
        return frozenset({sender_lock})
    contract = net.contracts.get(_pad(tx.to))
    if contract is None:
        return frozenset({sender_lock})   # rejected before any access
    footprints = contract.footprints
    if footprints is None:
        return None                       # deployed without a signature
    name = tx.transition or ""
    if name not in footprints:
        # run_transition rejects unknown components before any state
        # access; only the sender account is touched.
        return frozenset({sender_lock})
    pfs = footprints[name]
    if pfs is None:
        return None                       # ⊤ summary: unbounded
    caddr = contract.address
    tokens = {sender_lock}
    for pf in pfs:
        if pf.is_whole_field:
            tokens.add(("field", caddr, pf.field))
            continue
        value = _resolve_lock_key(pf.keys[0], tx, contract)
        if value is None:
            tokens.add(("field", caddr, pf.field))
            continue
        try:
            tokens.add(("key", caddr, pf.field, key_token(value)))
        except ValueError:
            tokens.add(("field", caddr, pf.field))
    if transition_sends(contract, name):
        tokens.add(("bal", caddr))
    return frozenset(tokens)


class _EffectSet:
    """Exact runtime effects of the transactions committed so far in
    one round, indexed for O(1) lock conflict checks."""

    __slots__ = ("_tokens",)

    def __init__(self) -> None:
        self._tokens: set = set()

    def add_many(self, tokens) -> None:
        self._tokens.update(tokens)

    def first_conflict(self, lockset: frozenset):
        """The first lock that intersects the committed effects, or
        ``None``.  A credit-only effect (acct+/bal+) conflicts with a
        full lock — the locked transaction may *read* what the credit
        changed — but commits freely past other credits."""
        tokens = self._tokens
        for lock in lockset:
            kind = lock[0]
            if kind == "acct":
                if lock in tokens or ("acct+", lock[1]) in tokens:
                    return lock
            elif kind == "field":
                if lock in tokens or ("key*", lock[1], lock[2]) in tokens:
                    return lock
            elif kind == "key":
                if lock in tokens \
                        or ("field", lock[1], lock[2]) in tokens:
                    return lock
            elif kind == "bal":
                if lock in tokens or ("bal+", lock[1]) in tokens:
                    return lock
        return None


# --------------------------------------------------------------------------
# Sandboxed execution of a single transaction.
# --------------------------------------------------------------------------

class _SandboxContract:
    """Duck-typed ``DeployedContract`` whose ``state`` stays the real
    epoch-start base (the overflow-budget check reads it) and whose
    interpreter is resolved lazily — stub contracts (no module) looked
    up only as payout recipients never need one."""

    __slots__ = ("_sandbox", "_real", "address", "module", "signature",
                 "state")

    def __init__(self, sandbox: "_Sandbox", real) -> None:
        self._sandbox = sandbox
        self._real = real
        self.address = real.address
        self.module = real.module
        self.signature = real.signature
        self.state = real.state

    @property
    def joins(self):
        return self._real.joins

    @property
    def interpreter(self) -> Interpreter:
        return self._sandbox.spec.interpreter_for(self._sandbox.slot,
                                                  self._real)


class _SandboxContracts:
    """``net.contracts`` as seen from inside a sandbox."""

    __slots__ = ("_sandbox", "_cache")

    def __init__(self, sandbox: "_Sandbox") -> None:
        self._sandbox = sandbox
        self._cache: dict[str, _SandboxContract] = {}

    def get(self, addr: str, default=None):
        wrapped = self._cache.get(addr)
        if wrapped is not None:
            return wrapped
        real = self._sandbox.spec.net.contracts.get(addr)
        if real is None:
            return default
        wrapped = _SandboxContract(self._sandbox, real)
        self._cache[addr] = wrapped
        return wrapped

    def __contains__(self, addr: str) -> bool:
        return addr in self._sandbox.spec.net.contracts

    def __getitem__(self, addr: str):
        wrapped = self.get(addr)
        if wrapped is None:
            raise KeyError(addr)
        return wrapped


class _Sandbox:
    """One transaction executed in complete isolation.

    Duck-types the slice of ``Network`` that ``Network._execute`` and
    ``_CallChain`` read, over private CoW state forks, cloned
    accounts, and a sender-seeded nonce tracker, so the *identical*
    execution code runs speculatively — speculation changes
    scheduling, never meaning.  Everything it produces is read by the
    commit pass; nothing it does touches shared state.
    """

    def __init__(self, spec: "_LaneSpeculation", slot: int,
                 tx: Transaction) -> None:
        self.spec = spec
        self.slot = slot
        self.tx = tx
        net = spec.net
        # -- the Network surface _execute / _CallChain read ---------
        self.epoch = net.epoch
        self.n_shards = net.n_shards
        self.overflow_guard = net.overflow_guard
        self._resident_tracker = None   # commit touches the real one
        self.contracts = _SandboxContracts(self)
        sender = _pad(tx.sender)
        self.nonces = NonceTracker(strict=net.nonces.strict)
        used = net.nonces.used.get(sender)
        if used is not None:
            self.nonces.used[sender] = set(used)
        last_global = net.nonces.last_global.get(sender)
        if last_global is not None:
            self.nonces.last_global[sender] = last_global
        last_lane = net.nonces.last_per_lane.get((sender, spec.lane))
        if last_lane is not None:
            self.nonces.last_per_lane[(sender, spec.lane)] = last_lane
        # -- private execution products ------------------------------
        self._journal = StateJournal()
        self._states: dict[str, ContractState] = {}
        self._start_balance: dict[str, int] = {}
        # addr -> (clone, pre_balance, pre_portions, existed),
        # insertion == touch order (the commit pass replays it).
        self._accounts: dict[str, tuple] = {}
        self.touched: dict[str, set[StateKey]] = {}
        self.receipt: Receipt | None = None
        self.crashed: BaseException | None = None
        self._view = None

    # -- Network surface ----------------------------------------------------

    def state_for(self, addr: str) -> ContractState:
        st = self._states.get(addr)
        if st is None:
            st = self.spec.parent_state(addr).fork()
            st.journal = self._journal
            self._states[addr] = st
            self._start_balance[addr] = st.balance
        return st

    def _account(self, address: str) -> Account:
        address = _pad(address)
        entry = self._accounts.get(address)
        if entry is None:
            net = self.spec.net
            real = net.accounts.get(address)
            if real is None:
                clone = Account(address, 0)
                clone.split_across(net.n_shards,
                                   net.dispatcher.home_shard(address))
                existed = False
            else:
                clone = Account(address, real.balance,
                                dict(real.shard_portions))
                existed = True
            entry = (clone, clone.balance, dict(clone.shard_portions),
                     existed)
            self._accounts[address] = entry
        return entry[0]

    # -- execution ----------------------------------------------------------

    def run(self) -> None:
        net = self.spec.net
        try:
            self.receipt = type(net)._execute(
                self, self.tx, self.spec.lane, self.state_for,
                self.touched)
        except Exception as exc:      # noqa: BLE001 — retried serially
            self.crashed = exc

    @property
    def nonce_ok(self) -> bool:
        return self.receipt is not None \
            and self.receipt.error != "bad nonce"

    # -- commit-pass views --------------------------------------------------

    def journal_view(self):
        """(ordered deduped write keys per address, balance old-value
        sequences per address) from the private journal."""
        if self._view is None:
            by_id = {id(st): addr for addr, st in self._states.items()}
            writes: dict[str, list[StateKey]] = {}
            seen: set = set()
            balance_olds: dict[str, list[int]] = {}
            for entry in self._journal.entries:
                kind = entry[0]
                if kind == "write":
                    _, st, key, _old = entry
                    addr = by_id.get(id(st))
                    if addr is None or (addr, key) in seen:
                        continue
                    seen.add((addr, key))
                    writes.setdefault(addr, []).append(key)
                elif kind == "balance":
                    _, st, old = entry
                    addr = by_id.get(id(st))
                    if addr is not None:
                        balance_olds.setdefault(addr, []).append(old)
            self._view = (writes, balance_olds)
        return self._view

    def effect_tokens(self) -> list:
        """The transaction's exact runtime effects as conflict tokens.

        Journal keys of a rolled-back (failed) call chain are included
        — their committed values are no-ops, so the only cost is a
        conservative extra conflict.  Credit-only moves are downgraded
        to ``acct+``/``bal+`` so commutative credits (payments and
        accepts into one hot account/contract) commit side by side.
        """
        sender = _pad(self.tx.sender)
        tokens: list = [("acct", sender)]
        writes, balance_olds = self.journal_view()
        for addr, keys in writes.items():
            for field, path in keys:
                if not path:
                    tokens.append(("field", addr, field))
                    continue
                try:
                    tok = key_token(path[0])
                except ValueError:
                    tokens.append(("field", addr, field))
                    continue
                tokens.append(("key", addr, field, tok))
                tokens.append(("key*", addr, field))
        for addr, st in self._states.items():
            delta = st.balance - self._start_balance[addr]
            if delta == 0:
                continue
            seq = balance_olds.get(addr, []) + [st.balance]
            monotonic = all(a <= b for a, b in zip(seq, seq[1:]))
            tokens.append(("bal+" if monotonic else "bal", addr))
        for addr, (clone, pre_bal, pre_portions, existed) \
                in self._accounts.items():
            if addr == sender:
                continue
            bal_d = clone.balance - pre_bal
            portion_ds = [
                clone.shard_portions.get(s, 0) - pre_portions.get(s, 0)
                for s in set(clone.shard_portions) | set(pre_portions)]
            if existed and bal_d == 0 and not any(portion_ds):
                continue
            if bal_d < 0 or any(d < 0 for d in portion_ds):
                tokens.append(("acct", addr))
            else:
                tokens.append(("acct+", addr))
        return tokens


# --------------------------------------------------------------------------
# The per-lane scheduler.
# --------------------------------------------------------------------------

class _LaneSpeculation:
    """Round-based optimistic execution of one lane queue.

    Owns the lane's MicroBlock, local state forks, touched sets and
    deferred list — the exact quadruple ``Network._run_lane`` returns —
    plus the undo machinery (private journal + account/nonce undo
    logs) that makes every speculative mutation of real network state
    reversible until the first strict serial step.
    """

    def __init__(self, net, lane: int, queue: list[Transaction],
                 gas_limit: int) -> None:
        self.net = net
        self.lane = lane
        self.queue = queue
        self.gas_limit = gas_limit
        self.meters = net._meters
        self.batch = max(2, net.spec_batch)
        self.retry_limit = max(0, net.spec_retries)
        self.workers = max(0, net.spec_workers)
        self.mb = MicroBlock(shard=lane, epoch=net.epoch)
        self.local_states: dict[str, ContractState] = {}
        self.touched: dict[str, set[StateKey]] = {}
        self.deferred: list[Transaction] = []
        self.pos = 0
        self.serial_mode = False
        # True until the first serial step: every real-state mutation
        # so far is covered by the undo logs, so the whole lane can
        # still be abandoned (rolled back) on an unexpected crash.
        self.can_abandon = True
        self.retries: dict[int, int] = {}
        self._locksets: dict[int, frozenset | None] = {}
        # Private undo journal for the lane-local forks.  Deliberately
        # NOT net.journal: speculative entries must never interleave
        # with outstanding checkpoint marks on the network journal.
        self.journal = StateJournal()
        self.lane_mark = self.journal.mark()
        self.acct_undo: list[tuple] = []
        self.nonce_undo: list[tuple] = []
        self._pool: ThreadPoolExecutor | None = None
        self._interp_cache: dict[tuple[int, str], Interpreter] = {}
        # Deterministic lane meters are buffered and flushed once at
        # lane end, so an abandoned lane leaves them untouched and the
        # serial redo counts each receipt exactly once.
        self._n_executed = 0
        self._n_ok = 0
        self._n_failed = 0
        self._gas_total = 0
        self._gas_obs: list[int] = []

    # -- shared lookups -----------------------------------------------------

    def parent_state(self, addr: str) -> ContractState:
        st = self.local_states.get(addr)
        if st is not None:
            return st
        return self.net.contracts[addr].state

    def lane_state_for(self, addr: str) -> ContractState:
        st = self.local_states.get(addr)
        if st is None:
            st = self.net.contracts[addr].state.fork()
            st.journal = self.journal
            self.local_states[addr] = st
        return st

    def interpreter_for(self, slot: int, contract) -> Interpreter:
        """Sequential sandboxes may share the contract's interpreter
        (one runs at a time); thread-pooled sandboxes get a private
        instance per (window slot, contract) — ``run_transition``
        installs a per-call gas hook on the instance."""
        if self.workers < 2:
            return contract.interpreter
        key = (slot, contract.address)
        interp = self._interp_cache.get(key)
        if interp is None:
            interp = Interpreter(contract.module)
            self._interp_cache[key] = interp
        return interp

    def _lockset(self, tx: Transaction) -> frozenset | None:
        cached = self._locksets.get(tx.tx_id, _UNSET)
        if cached is not _UNSET:
            return cached
        lockset = transaction_lockset(self.net, tx)
        self._locksets[tx.tx_id] = lockset
        return lockset

    # -- main loop ----------------------------------------------------------

    def run(self):
        net = self.net
        t0 = time.perf_counter_ns() if net.metrics.enabled else 0
        while self.pos < len(self.queue):
            if self.mb.gas_used >= self.gas_limit:
                self.deferred = self.queue[self.pos:]
                break   # retried next epoch when the mempool is enabled
            if self.serial_mode:
                self._serial_step()
                continue
            window = self._form_window()
            if len(window) < 2:
                self._serial_step()
                continue
            self._round(window)
        self._flush_lane_meters()
        if net.metrics.enabled:
            self.meters.lane_exec_ns.observe(time.perf_counter_ns() - t0)
        return self.mb, self.local_states, self.touched, self.deferred

    def _form_window(self) -> list[tuple[Transaction, frozenset]]:
        """The next speculative window: a contiguous queue prefix of
        speculable transactions with pairwise-distinct senders, cut at
        ``spec_batch``.  Same-sender pairs are excluded up front —
        they always conflict through the account lock, so a
        single-sender queue degrades to serial with zero wasted
        executions."""
        window: list[tuple[Transaction, frozenset]] = []
        senders: set[str] = set()
        limit = min(len(self.queue), self.pos + self.batch)
        for i in range(self.pos, limit):
            tx = self.queue[i]
            lockset = self._lockset(tx)
            if lockset is None:
                break
            sender = _pad(tx.sender)
            if sender in senders:
                break
            senders.add(sender)
            window.append((tx, lockset))
        return window

    def _execute_window(self, window) -> list[_Sandbox]:
        sandboxes = [_Sandbox(self, i, tx)
                     for i, (tx, _) in enumerate(window)]
        if self.workers >= 2 and len(sandboxes) > 1:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix=f"spec-lane-{self.lane}")
            futures = [self._pool.submit(sb.run) for sb in sandboxes]
            for future in futures:
                future.result()   # sb.run traps exceptions itself
        else:
            for sb in sandboxes:
                sb.run()
        return sandboxes

    def _round(self, window) -> None:
        meters = self.meters
        meters.spec_batches.inc()
        meters.spec_attempts.inc(len(window))
        meters.spec_batch_size.observe(len(window))
        sandboxes = self._execute_window(window)

        jmark = self.journal.mark()
        acct_mark = len(self.acct_undo)
        nonce_mark = len(self.nonce_undo)
        touched_snapshot = {a: set(v) for a, v in self.touched.items()}
        states_snapshot = set(self.local_states)

        committed = 0
        round_gas = 0
        round_receipts: list[tuple[Transaction, Receipt]] = []
        effects = _EffectSet()
        gas_stop = False
        try:
            for i, ((tx, lockset), sb) in enumerate(zip(window,
                                                        sandboxes)):
                if self.mb.gas_used + round_gas >= self.gas_limit:
                    # The serial loop's pre-transaction gas check, at
                    # commit granularity — everything after this point
                    # defers, exactly as serial would.
                    gas_stop = True
                    break
                if sb.crashed is not None:
                    break
                if i and effects.first_conflict(lockset) is not None:
                    meters.spec_conflicts.inc()
                    break
                self._commit_one(tx, sb)
                effects.add_many(sb.effect_tokens())
                round_receipts.append((tx, sb.receipt))
                round_gas += sb.receipt.gas_used
                committed += 1
        except SpeculationError:
            # Commit-time inconsistency: undo the whole round (earlier
            # rounds stay committed) and continue strictly serially.
            meters.spec_rescues.inc()
            t0 = time.perf_counter_ns()
            self._rollback_round(jmark, acct_mark, nonce_mark,
                                 touched_snapshot, states_snapshot)
            meters.spec_rollback_ns.observe(time.perf_counter_ns() - t0)
            self.serial_mode = True
            return

        self.journal.release(jmark)
        for tx, receipt in round_receipts:
            self.mb.receipts.append(receipt)
            self.mb.gas_used += receipt.gas_used
            self._record_receipt(receipt)
            if self.retries.get(tx.tx_id):
                meters.spec_retries.inc()
        meters.spec_commits.inc(committed)
        self.pos += committed
        if gas_stop:
            return   # the main loop defers queue[pos:]
        aborted = window[committed:]
        if aborted:
            meters.spec_aborts.inc(len(aborted))
            for tx, _ in aborted:
                count = self.retries.get(tx.tx_id, 0) + 1
                self.retries[tx.tx_id] = count
                if count > self.retry_limit and not self.serial_mode:
                    meters.spec_serial_fallbacks.inc()
                    self.serial_mode = True
        if committed == 0:
            # The window head crashed in its sandbox (a conflict is
            # impossible at slot 0): reproduce it on the real path,
            # with serial semantics and guaranteed progress.
            self._serial_step()

    # -- committing one sandbox --------------------------------------------

    def _commit_one(self, tx: Transaction, sb: _Sandbox) -> None:
        net = self.net
        sender = _pad(tx.sender)
        # Nonce first: capture undo, replay the acceptance on the real
        # tracker, and cross-check the sandbox verdict.  Same-sender
        # window exclusion makes a mismatch unreachable; the check is
        # the defensive floor under the serial-equivalence claim.
        tracker = net.nonces
        had_entry = sender in tracker.used
        had_nonce = had_entry and tx.nonce in tracker.used[sender]
        self.nonce_undo.append((
            sender, tx.nonce, had_entry, had_nonce,
            tracker.last_global.get(sender),
            tracker.last_per_lane.get((sender, self.lane))))
        accepted = tracker.try_accept(sender, tx.nonce, self.lane)
        if net._resident_tracker is not None:
            net._resident_tracker.touch_nonce(sender)
        if accepted != sb.nonce_ok:
            raise SpeculationError(
                f"lane {self.lane}: nonce verdict diverged at commit "
                f"for tx#{tx.tx_id} (sandbox {sb.nonce_ok}, "
                f"real {accepted})")
        # Contract-state effects: replay the sandbox's journaled write
        # set (current values, deletes as MISSING) onto the lane
        # forks, balances as additive deltas.
        writes, _ = sb.journal_view()
        for addr, sb_st in sb._states.items():
            lane_st = self.lane_state_for(addr)
            for key in writes.get(addr, ()):
                lane_st.write(key, sb_st.read(key))
            delta = sb_st.balance - sb._start_balance[addr]
            if delta:
                lane_st.balance = lane_st.balance + delta
        # Account effects, in sandbox touch order.  net._account is
        # instance-dispatched on purpose: lazy creation, resident
        # tracker touches, and the replica recording shadow all apply
        # exactly as on the serial path.
        for addr, (clone, pre_bal, pre_portions, existed) \
                in sb._accounts.items():
            real_existed = addr in net.accounts
            real = net._account(addr)
            self.acct_undo.append((addr, real.balance,
                                   dict(real.shard_portions),
                                   real_existed))
            bal_d = clone.balance - pre_bal
            if bal_d:
                real.balance += bal_d
            for shard in set(clone.shard_portions) | set(pre_portions):
                d = clone.shard_portions.get(shard, 0) \
                    - pre_portions.get(shard, 0)
                if d:
                    real.shard_portions[shard] = \
                        real.shard_portions.get(shard, 0) + d
        for addr, keys in sb.touched.items():
            self.touched.setdefault(addr, set()).update(keys)

    # -- undo ---------------------------------------------------------------

    def _rollback_round(self, jmark: int, acct_mark: int,
                        nonce_mark: int, touched_snapshot: dict,
                        states_snapshot: set) -> None:
        net = self.net
        tracker = net.nonces
        for sender, nonce, had_entry, had_nonce, prev_global, prev_lane \
                in reversed(self.nonce_undo[nonce_mark:]):
            if not had_entry:
                tracker.used.pop(sender, None)
            elif not had_nonce:
                used = tracker.used.get(sender)
                if used is not None:
                    used.discard(nonce)
            if prev_global is None:
                tracker.last_global.pop(sender, None)
            else:
                tracker.last_global[sender] = prev_global
            if prev_lane is None:
                tracker.last_per_lane.pop((sender, self.lane), None)
            else:
                tracker.last_per_lane[(sender, self.lane)] = prev_lane
        del self.nonce_undo[nonce_mark:]
        for addr, balance, portions, existed \
                in reversed(self.acct_undo[acct_mark:]):
            if not existed:
                net.accounts.pop(addr, None)
            else:
                account = net.accounts.get(addr)
                if account is not None:
                    account.balance = balance
                    account.shard_portions = portions
        del self.acct_undo[acct_mark:]
        self.journal.rollback_to(jmark)
        self.journal.release(jmark)
        for addr in list(self.local_states):
            if addr not in states_snapshot:
                self.local_states.pop(addr).journal = None
        self.touched.clear()
        self.touched.update(touched_snapshot)

    def abandon(self) -> None:
        """Restore the exact pre-lane state.  Sound only while
        ``can_abandon`` holds — i.e. before the first serial step put
        un-undoable mutations on the real path."""
        self._rollback_round(self.lane_mark, 0, 0, {}, set())

    def close(self) -> None:
        for st in self.local_states.values():
            st.journal = None
        self.journal.release(self.lane_mark)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        # Test hook: the property suite asserts the private journal
        # drained (depth 0, no outstanding marks) after every lane.
        self.net._spec_last_journal = self.journal

    # -- strict serial path -------------------------------------------------

    def _serial_step(self) -> None:
        self.can_abandon = False
        tx = self.queue[self.pos]
        receipt = self.net._execute(tx, self.lane, self.lane_state_for,
                                    self.touched)
        self.mb.receipts.append(receipt)
        self.mb.gas_used += receipt.gas_used
        self._record_receipt(receipt)
        if self.retries.get(tx.tx_id):
            self.meters.spec_retries.inc()
        self.pos += 1

    # -- deterministic lane meters ------------------------------------------

    def _record_receipt(self, receipt: Receipt) -> None:
        self._n_executed += 1
        if receipt.success:
            self._n_ok += 1
        else:
            self._n_failed += 1
        self._gas_total += receipt.gas_used
        self._gas_obs.append(receipt.gas_used)

    def _flush_lane_meters(self) -> None:
        meters = self.meters
        if self._n_executed:
            meters.lane_tx_executed.inc(self._n_executed)
        if self._n_ok:
            meters.lane_tx_ok.inc(self._n_ok)
        if self._n_failed:
            meters.lane_tx_failed.inc(self._n_failed)
        if self._gas_total:
            meters.lane_gas.inc(self._gas_total)
        for gas in self._gas_obs:
            meters.lane_gas_per_tx.observe(gas)


def run_speculative_lane(net, lane: int, queue: list[Transaction],
                         gas_limit: int):
    """Entry point ``Network._run_lane`` dispatches to.

    Returns the serial quadruple ``(mb, local_states, touched,
    deferred)``.  An unexpected crash before any serial step abandons
    the lane (full undo of every speculative mutation) and raises
    :class:`SpeculationError` — the supervisor's and coordinator's
    signal to redo the lane without speculation, which the restore
    makes sound.  After a serial step the crash re-raises unchanged,
    exactly as the vanilla serial loop would.
    """
    spec = _LaneSpeculation(net, lane, queue, gas_limit)
    try:
        result = spec.run()
    except Exception as exc:
        if spec.can_abandon:
            try:
                spec.abandon()
            finally:
                spec.close()
            raise SpeculationError(
                f"speculative lane {lane} abandoned after "
                f"{type(exc).__name__}: {exc}") from exc
        spec.close()
        raise
    spec.close()
    return result
