"""Bounded, admission-controlled mempool (the service-mode front door).

The paper's Fig. 14 drives a *saturated* network; a real deployment
needs a front door that survives saturation.  This module provides it:

* **Per-sender FIFO nonce queues.**  A sender's transactions are
  admitted only in contiguous nonce order — gaps and duplicates are
  rejected at the door with typed receipts, so the pool never holds a
  transaction that cannot execute before the ones ahead of it.
* **Capacity caps.**  A global cap bounds pool memory; a per-sender cap
  stops one client from monopolising it.
* **Backpressure.**  Above the high-water mark, new admissions are
  refused with a ``BACKPRESSURE`` receipt carrying a retry-after hint
  (in ticks), until occupancy falls back under the low-water mark.
* **Deterministic shedding.**  Deferred transactions re-entering from
  the execution backlog are never refused (refusing them would lose
  work the service already accepted); if they push the pool past its
  cap, the lowest-priority queue *tail* is shed — lowest gas price
  first, then most-deferred, then youngest — and the sender's nonce
  floor rolls back so the client can resubmit.  Only tails are ever
  evicted, preserving nonce contiguity.
* **Exactly-one-terminal accounting.**  Every submission ends in
  exactly one terminal outcome — committed, failed, rejected at
  admission, backpressured, shed, dead-lettered, or dropped by
  injected churn — and the counters partition: ``submitted ==
  terminal + pending + inflight`` at every instant
  (``tests/test_mempool_properties.py`` enforces this under arbitrary
  interleavings).

The pool is a pure data structure: it never executes transactions and
holds no wall-clock state beyond optional latency stamps.  The
:class:`~repro.chain.service.ServiceLoop` drains it into
``Network.process_epoch`` and reports outcomes back.
"""

from __future__ import annotations

import enum
import heapq
import time
from collections import deque
from dataclasses import dataclass, field as dc_field

from .transaction import Transaction
from .serialization import transaction_to_obj, transaction_from_obj


class AdmissionStatus(enum.Enum):
    """What the front door said to one submission."""

    ADMITTED = "admitted"
    REJECTED = "rejected"
    BACKPRESSURE = "backpressure"


class RejectReason(enum.Enum):
    """Typed reasons for an admission-time rejection."""

    NONCE_GAP = "nonce-gap"              # nonce > expected: hole ahead
    NONCE_DUPLICATE = "nonce-duplicate"  # nonce <= last admitted/used
    SENDER_FULL = "sender-queue-full"    # per-sender cap reached
    POOL_FULL = "pool-full"              # global cap, tx outranked


class TerminalKind(enum.Enum):
    """The exactly-one terminal outcome of a submission.

    ``COMMITTED``/``FAILED`` are execution outcomes (the transaction
    reached a block; ``FAILED`` means it carries a failure receipt).
    ``REJECTED``/``BACKPRESSURED`` are admission outcomes — the pool
    never held the transaction.  ``SHED`` and ``DEAD_LETTERED`` are
    overload outcomes for admitted transactions.  ``DROPPED`` accounts
    for transactions removed by injected mempool churn (fault runs
    only) so even adversarial runs keep the partition exact.
    """

    COMMITTED = "committed"
    FAILED = "failed"
    REJECTED = "rejected"
    BACKPRESSURED = "backpressured"
    SHED = "shed"
    DEAD_LETTERED = "dead-lettered"
    DROPPED = "dropped"


@dataclass(frozen=True)
class SubmitReceipt:
    """Typed answer to one ``submit`` call."""

    tx_id: int
    sender: str
    nonce: int
    status: AdmissionStatus
    reason: RejectReason | None = None
    # BACKPRESSURE only: suggested ticks to wait before resubmitting.
    retry_after: int | None = None

    @property
    def admitted(self) -> bool:
        return self.status is AdmissionStatus.ADMITTED


@dataclass
class PoolEntry:
    """One admitted transaction waiting to be drained."""

    tx: Transaction
    seq: int                 # global arrival order (drain key)
    deferrals: int = 0       # times returned by the execution backlog
    admit_tick: int = 0      # service tick at first admission
    admit_ns: int = 0        # wall-clock stamp (0 when metrics are off)

    def to_obj(self) -> dict:
        return {"tx": transaction_to_obj(self.tx),
                "deferrals": self.deferrals}

    @classmethod
    def from_obj(cls, obj: dict, seq: int) -> "PoolEntry":
        return cls(tx=transaction_from_obj(obj["tx"]), seq=seq,
                   deferrals=int(obj.get("deferrals", 0)))


@dataclass
class MempoolConfig:
    """Tuning knobs (docs/SERVICE.md, "Tuning")."""

    capacity: int = 2048          # global entry cap
    per_sender: int = 64          # per-sender queue cap
    high_water: float = 0.85      # engage backpressure at this fill
    low_water: float = 0.60       # release it below this fill

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("mempool capacity must be >= 1")
        if self.per_sender < 1:
            raise ValueError("per-sender cap must be >= 1")
        if not (0.0 < self.high_water <= 1.0):
            raise ValueError("high_water must be in (0, 1]")
        if not (0.0 <= self.low_water <= self.high_water):
            raise ValueError("low_water must be in [0, high_water]")

    @property
    def high_mark(self) -> int:
        return max(1, int(self.capacity * self.high_water))

    @property
    def low_mark(self) -> int:
        return int(self.capacity * self.low_water)


class Mempool:
    """Bounded admission-controlled transaction pool.

    ``nonce_floor`` tracks the highest nonce accepted (or known
    consumed on-chain) per sender; admission requires exactly
    ``floor + 1`` — except for a sender's very first submission, which
    sets the floor (the pool cannot know where an unseen sender's
    sequence starts).  Shedding a tail entry rolls the floor back so
    the client's resubmission is admissible again.
    """

    def __init__(self, config: MempoolConfig | None = None,
                 metrics=None, clock=time.monotonic_ns):
        self.config = config or MempoolConfig()
        self.queues: dict[str, deque[PoolEntry]] = {}
        self.nonce_floor: dict[str, int] = {}
        self.count = 0
        self.now_tick = 0            # maintained by the service loop
        self._seq = 0
        self._backpressure_on = False
        # Drained-but-not-terminal entries, keyed by tx_id.
        self.inflight: dict[int, PoolEntry] = {}
        # EWMA of recent per-tick commits; drives the retry-after hint.
        self.drain_rate = 1.0
        self.counters: dict[str, int] = {
            "submitted": 0, "admitted": 0, "readmitted": 0,
            **{f"rejected_{r.value}": 0 for r in RejectReason},
            **{t.value: 0 for t in TerminalKind
               if t not in (TerminalKind.REJECTED,)},
        }
        self._metrics = metrics
        self._clock = clock
        self._meters = (_MempoolMeters(metrics)
                        if metrics is not None and metrics.enabled
                        else None)

    # -- introspection -----------------------------------------------------

    @property
    def occupancy(self) -> int:
        return self.count

    @property
    def senders(self) -> int:
        return len(self.queues)

    @property
    def backpressure_active(self) -> bool:
        return self._backpressure_on

    def terminal_total(self) -> int:
        c = self.counters
        return (c["committed"] + c["failed"] + c["shed"]
                + c["dead-lettered"] + c["dropped"])

    def rejected_total(self) -> int:
        return sum(self.counters[f"rejected_{r.value}"]
                   for r in RejectReason)

    def accounted(self) -> int:
        """Every submission, partitioned: terminal outcomes plus the
        still-live population.  Equals ``counters['submitted']`` at all
        times (the core safety invariant)."""
        return (self.rejected_total() + self.counters["backpressured"]
                + self.terminal_total() + self.count
                + len(self.inflight))

    # -- admission ---------------------------------------------------------

    def submit(self, tx: Transaction) -> SubmitReceipt:
        """Apply admission control to one fresh submission."""
        self.counters["submitted"] += 1
        sender = tx.sender
        floor = self.nonce_floor.get(sender)
        if floor is not None:
            if tx.nonce <= floor:
                return self._reject(tx, RejectReason.NONCE_DUPLICATE)
            if tx.nonce > floor + 1:
                return self._reject(tx, RejectReason.NONCE_GAP)
        queue = self.queues.get(sender)
        if queue is not None and len(queue) >= self.config.per_sender:
            return self._reject(tx, RejectReason.SENDER_FULL)

        if self.count >= self.config.capacity:
            # Full: admit only if the newcomer outranks the worst
            # sheddable tail, which is then shed to make room.  Ties
            # keep the incumbent (no churn).
            victim = self._shed_candidate(exclude_sender=sender)
            if victim is None or not self._outranks(tx, victim):
                return self._reject(tx, RejectReason.POOL_FULL)
            self._shed_entry(victim)
        elif self._under_backpressure():
            self.counters["backpressured"] += 1
            if self._meters:
                self._meters.backpressured.inc()
            return SubmitReceipt(
                tx.tx_id, sender, tx.nonce,
                AdmissionStatus.BACKPRESSURE,
                retry_after=self._retry_after_hint())

        entry = PoolEntry(
            tx, self._next_seq(), admit_tick=self.now_tick,
            admit_ns=self._clock() if self._meters else 0)
        self.queues.setdefault(sender, deque()).append(entry)
        self.nonce_floor[sender] = tx.nonce
        self.count += 1
        self.counters["admitted"] += 1
        if self._meters:
            self._meters.admitted.inc()
            self._refresh_gauges()
        return SubmitReceipt(tx.tx_id, sender, tx.nonce,
                             AdmissionStatus.ADMITTED)

    def readmit(self, tx: Transaction, deferrals: int,
                admit_tick: int = 0, admit_ns: int = 0) -> None:
        """Return a gas-deferred transaction to the *front* of its
        sender's queue.

        Re-admissions bypass backpressure and the caps — the pool
        already accepted this work and must not lose it silently; any
        resulting over-capacity is resolved by ``shed_to_capacity``.
        Keeps the original admission stamps so submit→commit latency
        spans deferrals.
        """
        sender = tx.sender
        entry = PoolEntry(tx, self._next_seq(), deferrals=deferrals,
                          admit_tick=admit_tick, admit_ns=admit_ns)
        self.inflight.pop(tx.tx_id, None)
        queue = self.queues.setdefault(sender, deque())
        if queue and queue[0].tx.nonce < tx.nonce:
            raise ValueError(
                f"readmit would break nonce order for {sender}: "
                f"head nonce {queue[0].tx.nonce} < {tx.nonce}")
        queue.appendleft(entry)
        self.nonce_floor[sender] = max(
            self.nonce_floor.get(sender, 0), tx.nonce)
        self.count += 1
        self.counters["readmitted"] += 1
        if self._meters:
            self._meters.readmitted.inc()
            self._refresh_gauges()

    def restore(self, entries: list[PoolEntry],
                nonce_floor: dict[str, int] | None = None) -> None:
        """Rebuild the pending pool after ``Network.resume``.

        ``entries`` arrive in their original global order; each
        sender's slice is re-sorted by nonce (deferred re-admissions
        were prepended live, which the flat order cannot express).
        Restored entries do not recount as submissions — they were
        already counted in the pre-crash life; the post-restore
        invariant is seeded by ``admitted``.
        """
        for entry in sorted(entries, key=lambda e: e.seq):
            queue = self.queues.setdefault(entry.tx.sender, deque())
            queue.append(entry)
            entry.seq = self._next_seq()
            self.count += 1
            self.counters["submitted"] += 1
            self.counters["admitted"] += 1
        for sender, queue in self.queues.items():
            ordered = sorted(queue, key=lambda e: e.tx.nonce)
            self.queues[sender] = deque(ordered)
            floor = max(e.tx.nonce for e in ordered)
            self.nonce_floor[sender] = max(
                self.nonce_floor.get(sender, 0), floor)
        if nonce_floor:
            for sender, floor in nonce_floor.items():
                self.nonce_floor[sender] = max(
                    self.nonce_floor.get(sender, 0), floor)
        if self._meters:
            self._refresh_gauges()

    # -- draining and outcomes ---------------------------------------------

    def drain(self, max_n: int) -> list[Transaction]:
        """Remove up to ``max_n`` transactions in global arrival order,
        subject to per-sender FIFO: a sender's transactions leave in
        nonce order, interleaved with other senders by arrival."""
        if max_n <= 0 or self.count == 0:
            return []
        heap = [(q[0].seq, sender) for sender, q in self.queues.items()
                if q]
        heapq.heapify(heap)
        out: list[Transaction] = []
        while heap and len(out) < max_n:
            _, sender = heapq.heappop(heap)
            queue = self.queues[sender]
            entry = queue.popleft()
            self.count -= 1
            self.inflight[entry.tx.tx_id] = entry
            out.append(entry.tx)
            if queue:
                heapq.heappush(heap, (queue[0].seq, sender))
            else:
                del self.queues[sender]
        if self._meters:
            self._refresh_gauges()
        return out

    def resolve(self, tx_id: int,
                kind: TerminalKind) -> PoolEntry | None:
        """Mark a drained transaction terminal.  Returns the entry, or
        ``None`` if the id is unknown (e.g. a churn-duplicated receipt
        for an already-terminal transaction)."""
        entry = self.inflight.pop(tx_id, None)
        if entry is None:
            return None
        self._count_terminal(entry, kind)
        return entry

    def resolve_leftover_inflight(self) -> list[PoolEntry]:
        """Close the books on a tick: anything drained but neither
        receipted nor deferred was removed by injected mempool churn.
        Counting it ``DROPPED`` keeps the partition exact even under
        adversarial fault plans."""
        leftovers = list(self.inflight.values())
        self.inflight.clear()
        for entry in leftovers:
            self._count_terminal(entry, TerminalKind.DROPPED)
        return leftovers

    def shed_to_capacity(self) -> list[PoolEntry]:
        """Deterministically evict queue tails until occupancy is back
        under the cap (re-admissions may have pushed past it)."""
        shed: list[PoolEntry] = []
        while self.count > self.config.capacity:
            victim = self._shed_candidate()
            if victim is None:      # pragma: no cover - count>0 => tail
                break
            shed.append(self._shed_entry(victim))
        return shed

    def dead_letter(self, tx: Transaction, deferrals: int,
                    admit_tick: int = 0, admit_ns: int = 0) -> PoolEntry:
        """Terminally retire a transaction whose deferral budget is
        exhausted (called by the service loop instead of ``readmit``)."""
        entry = PoolEntry(tx, self._next_seq(), deferrals=deferrals,
                          admit_tick=admit_tick, admit_ns=admit_ns)
        self.inflight.pop(tx.tx_id, None)
        self._count_terminal(entry, TerminalKind.DEAD_LETTERED)
        return entry

    def note_drain_rate(self, committed: int) -> None:
        """Feed the retry-after estimator with this tick's commits."""
        self.drain_rate = 0.7 * self.drain_rate + 0.3 * max(committed, 0)

    def update_backpressure(self) -> bool:
        """Hysteresis: engage at the high-water mark, release under the
        low-water mark.  Returns the new state."""
        if self._backpressure_on:
            if self.count <= self.config.low_mark:
                self._backpressure_on = False
        elif self.count >= self.config.high_mark:
            self._backpressure_on = True
        if self._meters:
            self._meters.backpressure_on.set(
                1 if self._backpressure_on else 0)
        return self._backpressure_on

    # -- persistence -------------------------------------------------------

    def pending_entries(self) -> list[PoolEntry]:
        """Every pending entry in global drain order (inflight entries
        are the service loop's to journal — they are inside an epoch)."""
        heap = [(q[0].seq, sender) for sender, q in self.queues.items()
                if q]
        heapq.heapify(heap)
        out: list[PoolEntry] = []
        cursors = {sender: 0 for _, sender in heap}
        while heap:
            _, sender = heapq.heappop(heap)
            queue = self.queues[sender]
            i = cursors[sender]
            out.append(queue[i])
            cursors[sender] = i + 1
            if i + 1 < len(queue):
                heapq.heappush(heap, (queue[i + 1].seq, sender))
        return out

    def to_obj(self) -> dict:
        """Snapshot form: pending entries only.  Nonce floors are
        reconstructed at restore from execution state + pending
        nonces, so they are not persisted."""
        return {"entries": [e.to_obj() for e in self.pending_entries()]}

    # -- internals ---------------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _under_backpressure(self) -> bool:
        self.update_backpressure()
        return self._backpressure_on

    def _retry_after_hint(self) -> int:
        """Ticks until occupancy should fall under the high-water mark
        at the recently observed drain rate."""
        backlog = max(self.count - self.config.low_mark, 1)
        rate = max(int(self.drain_rate), 1)
        return -(-backlog // rate)  # ceil

    def _reject(self, tx: Transaction,
                reason: RejectReason) -> SubmitReceipt:
        self.counters[f"rejected_{reason.value}"] += 1
        if self._meters:
            self._meters.rejected.inc()
        return SubmitReceipt(tx.tx_id, tx.sender, tx.nonce,
                             AdmissionStatus.REJECTED, reason=reason)

    def _outranks(self, tx: Transaction, victim: PoolEntry) -> bool:
        # A newcomer must strictly beat the victim's gas price; equal
        # priority keeps the incumbent.
        return tx.gas_price > victim.tx.gas_price

    def _shed_candidate(self, exclude_sender: str | None = None
                        ) -> PoolEntry | None:
        """The entry the shedding policy evicts next: among queue
        *tails* (only tails preserve nonce contiguity), the lowest gas
        price; ties broken by most-deferred, then youngest arrival.
        Deterministic: no randomness, no wall clock."""
        best: PoolEntry | None = None
        for sender, queue in self.queues.items():
            if not queue or sender == exclude_sender:
                continue
            tail = queue[-1]
            if best is None or self._shed_key(tail) < self._shed_key(best):
                best = tail
        return best

    @staticmethod
    def _shed_key(entry: PoolEntry) -> tuple:
        return (entry.tx.gas_price, -entry.deferrals, -entry.seq)

    def _shed_entry(self, entry: PoolEntry) -> PoolEntry:
        sender = entry.tx.sender
        queue = self.queues[sender]
        assert queue[-1] is entry, "shedding must take the tail"
        queue.pop()
        if not queue:
            del self.queues[sender]
        self.count -= 1
        # Roll the nonce floor back so the client can resubmit.
        if self.nonce_floor.get(sender, 0) >= entry.tx.nonce:
            self.nonce_floor[sender] = entry.tx.nonce - 1
        self._count_terminal(entry, TerminalKind.SHED)
        return entry

    def _count_terminal(self, entry: PoolEntry,
                        kind: TerminalKind) -> None:
        self.counters[kind.value] += 1
        if self._meters:
            self._meters.terminal[kind].inc()
            if kind in (TerminalKind.COMMITTED, TerminalKind.FAILED):
                self._meters.latency_ticks.observe(
                    max(self.now_tick - entry.admit_tick, 0))
                if entry.admit_ns:
                    self._meters.latency_ms.observe(
                        (self._clock() - entry.admit_ns) / 1e6)
            self._refresh_gauges()

    def _refresh_gauges(self) -> None:
        m = self._meters
        m.occupancy.set(self.count)
        m.sender_queues.set(len(self.queues))
        m.saturation.set(
            round(1000 * self.count / self.config.capacity))


# Submit→commit latency in service ticks (logical epochs): these are
# deterministic given the workload + fault plan, unlike the wall-clock
# milliseconds histogram next to it.
TICK_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128)
LAT_MS_BUCKETS = (0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000,
                  2500, 5000)


class _MempoolMeters:
    """Instruments for one pool (NULL_REGISTRY makes these no-ops)."""

    def __init__(self, metrics):
        c, g, h = metrics.counter, metrics.gauge, metrics.histogram
        self.admitted = c("mempool.admitted")
        self.readmitted = c("mempool.readmitted")
        self.rejected = c("mempool.rejected")
        self.backpressured = c("mempool.backpressured")
        self.terminal = {
            kind: c(f"mempool.terminal.{kind.value}")
            for kind in TerminalKind
            if kind not in (TerminalKind.REJECTED,
                            TerminalKind.BACKPRESSURED)
        }
        self.occupancy = g("mempool.occupancy")
        self.sender_queues = g("mempool.senders")
        self.saturation = g("mempool.saturation_permille")
        self.backpressure_on = g("mempool.backpressure_active")
        # Tick latency is logical (deterministic); wall latency is not.
        self.latency_ticks = h("mempool.latency_ticks", TICK_BUCKETS)
        self.latency_ms = h("mempool.latency_ms", LAT_MS_BUCKETS,
                            deterministic=False)
