"""The sharded network simulator (Fig. 10).

A :class:`Network` holds lookup-node dispatch, N shards, and the DS
committee.  Every transaction is *really executed* through the Scilla
interpreter; the simulator contributes the things the paper's EC2
testbed provided physically: parallel shard lanes, per-epoch gas
limits, the FSD merge, and a wall-clock cost model.

Epoch processing follows the protocol: shards execute their assigned
transactions sequentially against the epoch-start state; each produces
a MicroBlock plus StateDeltas; the DS committee three-way-merges the
deltas, then executes the potentially-conflicting transactions routed
to it; the FinalBlock's state becomes the next epoch's start state.
"""

from __future__ import annotations

import os
import time
from dataclasses import (
    asdict, dataclass, field as dc_field, replace as dc_replace,
)

from ..core.joins import JoinKind
from ..core.pipeline import run_pipeline_cached
from ..obs.metrics import (
    GAS_BUCKETS, MS_BUCKETS, NS_BUCKETS, NULL_REGISTRY,
)
from ..obs.tracing import NULL_TRACER
from ..core.signature import ShardingSignature
from ..scilla.ast import Module
from ..scilla.interpreter import Interpreter, TxContext
from ..scilla.backend import PagedDict, resolve_backend
from ..scilla.state import ContractState, StateJournal, StateKey
from ..scilla import values as scilla_values
from ..scilla.values import MapVal, Value
from ..scilla import types as ty
from .blocks import FinalBlock, MicroBlock, Receipt
from .consensus import DEFAULT_COST_MODEL, CostModel
from .delta import StateDelta, compute_delta, merge_deltas
from .dispatch import DS, DeployedSignature, Dispatcher, _pad
from .faults import FaultInjector, FaultPlan
from .lanes import LaneResult, run_lanes
from .recovery import (
    DeltaViolation, NetworkCheckpoint, fingerprint_digest, validate_delta,
)
from .speculate import SpeculationError
from .supervise import (
    BoundedLog, LaneFailureKind, LaneSupervisor, SuperviseConfig,
)
from .serialization import (
    signature_from_obj, signature_to_obj, transaction_from_obj,
    transaction_to_obj, value_from_json, value_to_json,
)
from .transaction import Account, NonceTracker, Transaction
from .wal import WALError, WriteAheadLog

PAYMENT_GAS = 50

# Lane executor strategies for Network.process_epoch.  "serial" is the
# reference implementation; "thread"/"process" execute independent
# shard lanes concurrently through repro.chain.lanes with results
# merged in deterministic shard order — observationally identical to
# serial (tests/test_parallel_equivalence.py is the differential
# oracle).  The default comes from the REPRO_EXECUTOR env var so a
# whole test run can be pointed at a parallel path.
EXECUTOR_STRATEGIES = ("serial", "thread", "process")


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ[name])
    except (KeyError, ValueError):
        return default


@dataclass
class DeployedContract:
    address: str
    module: Module
    interpreter: Interpreter
    state: ContractState
    signature: ShardingSignature | None = None
    # Original source text; lets the process-pool lane executor ship
    # compact text (re-parsed once per worker) instead of pickled ASTs.
    source: str = ""
    # transition -> tuple of PseudoFields (reads ∪ writes from the raw
    # analysis summaries), or None for an unsummarisable (⊤)
    # transition.  None for the whole contract when deployed without a
    # signature.  Lane payload slicing ships only these components
    # (repro.chain.lanes).
    footprints: dict[str, tuple | None] | None = None

    @property
    def joins(self) -> dict[str, JoinKind]:
        return self.signature.joins if self.signature else {}


@dataclass
class BacklogEntry:
    """A gas-deferred transaction waiting in the mempool for retry."""

    tx: Transaction
    retries: int = 0
    # Earliest epoch at which the transaction is resubmitted (backoff).
    not_before: int = 0


@dataclass
class EpochStats:
    dispatched: int = 0
    committed: int = 0
    failed: int = 0
    deferred: int = 0
    to_ds: int = 0
    per_shard: dict[int, int] = dc_field(default_factory=dict)
    # Offered-load accounting for mempool-drained (service) epochs:
    # ``offered`` counts only this epoch's fresh submissions;
    # ``carried_in`` the backlog retries prepended to them.  Their sum
    # (minus injected churn) is ``dispatched``.
    offered: int = 0
    carried_in: int = 0
    # Recovery bookkeeping (see repro.chain.recovery).
    recovered: int = 0        # txns from excluded lanes rerouted to DS
    reexecuted: int = 0       # of those, actually executed this epoch
    rejected_deltas: int = 0  # byzantine StateDeltas the DS refused
    view_changes: int = 0     # epoch attempts discarded to a rollback
    dead_lettered: int = 0    # txns dropped after max_retries


class _NetworkMeters:
    """Every instrument the network records, created once per network.

    Counters without a flag are *deterministic*: their values are a
    pure function of the submitted workload, identical across the
    serial/thread/process executors and across a crash + resume
    (``tests/test_telemetry_differential.py`` enforces this).
    Executor-strategy and WAL counters legitimately vary between
    otherwise-identical runs, and every duration histogram is
    wall-clock, so those carry ``deterministic=False``.

    With a disabled registry every attribute is the shared null
    instrument — recording is an empty call.
    """

    def __init__(self, m):
        self.epochs = m.counter("net.epochs")
        self.tx_dispatched = m.counter("net.tx.dispatched")
        self.tx_committed = m.counter("net.tx.committed")
        self.tx_failed = m.counter("net.tx.failed")
        self.tx_deferred = m.counter("net.tx.deferred")
        self.tx_carried = m.counter("net.tx.carried")
        self.tx_to_ds = m.counter("net.tx.to_ds")
        self.tx_recovered = m.counter("net.tx.recovered")
        self.tx_reexecuted = m.counter("net.tx.reexecuted")
        self.tx_dead_lettered = m.counter("net.tx.dead_lettered")
        self.view_changes = m.counter("net.view_changes")
        self.rejected_deltas = m.counter("net.rejected_deltas")
        self.merge_deltas = m.counter("net.merge.deltas")
        self.merge_locations = m.counter("net.merge.locations")
        self.deploys = m.counter("net.deploy.count")
        # Hit/miss attribution reads the process-wide GLOBAL_CACHE,
        # whose warmth a resumed process does not share — a replayed
        # deploy can miss where the original hit.
        self.deploy_cache_hits = m.counter("net.deploy.cache_hits",
                                           deterministic=False)
        self.deploy_cache_misses = m.counter("net.deploy.cache_misses",
                                             deterministic=False)
        self.lane_tx_executed = m.counter("lane.tx.executed")
        self.lane_tx_ok = m.counter("lane.tx.ok")
        self.lane_tx_failed = m.counter("lane.tx.failed")
        self.lane_gas = m.counter("lane.gas.used")
        self.lane_gas_per_tx = m.histogram("lane.gas_per_tx", GAS_BUCKETS)
        self.parallel_epochs = m.counter("net.executor.parallel_epochs",
                                         deterministic=False)
        self.executor_fallbacks = m.counter("net.executor.fallbacks",
                                            deterministic=False)
        self.wal_appends = m.counter("net.wal.appends",
                                     deterministic=False)
        self.wal_barriers = m.counter("net.wal.barriers",
                                      deterministic=False)
        self.backlog_size = m.gauge("net.backlog.size")
        self.dead_letter_size = m.gauge("net.dead_letter.size")
        self.epoch_ns = m.histogram("net.epoch_ns", NS_BUCKETS,
                                    deterministic=False)
        self.lane_exec_ns = m.histogram("lane.exec_ns", NS_BUCKETS,
                                        deterministic=False)
        self.merge_ns = m.histogram("net.merge_ns", NS_BUCKETS,
                                    deterministic=False)
        self.wal_append_ns = m.histogram("net.wal.append_ns", NS_BUCKETS,
                                         deterministic=False)
        self.wal_fsync_ns = m.histogram("net.wal.fsync_ns", NS_BUCKETS,
                                        deterministic=False)
        self.deploy_ns = m.histogram("net.deploy_ns", NS_BUCKETS,
                                     deterministic=False)
        # State-engine instruments (PR 5): copy-on-write and journal
        # activity varies with executor scheduling and checkpoint
        # lifetimes, payload shapes with the slicing toggle — all
        # non-deterministic by design.
        self.cow_copies = m.counter("state.cow.copies",
                                    deterministic=False)
        self.journal_depth = m.gauge("state.journal.depth",
                                     deterministic=False)
        self.checkpoint_take_ns = m.histogram(
            "net.checkpoint.take_ns", NS_BUCKETS, deterministic=False)
        self.checkpoint_restore_ns = m.histogram(
            "net.checkpoint.restore_ns", NS_BUCKETS, deterministic=False)
        self.payload_states_full = m.counter("lane.payload.states_full",
                                             deterministic=False)
        self.payload_states_sliced = m.counter(
            "lane.payload.states_sliced", deterministic=False)
        self.payload_states_stub = m.counter("lane.payload.states_stub",
                                             deterministic=False)
        self.payload_entries = m.counter("lane.payload.entries",
                                         deterministic=False)
        self.payload_bytes = m.counter("lane.payload.bytes",
                                       deterministic=False)
        # Lane supervision (repro.chain.supervise): deadlines, retries,
        # breakers and quarantine respond to real infrastructure
        # failures and wall-clock scheduling, so every instrument is
        # non-deterministic by design.
        self.lane_failures = {
            kind: m.counter(f"supervise.failures.{kind.value}",
                            deterministic=False)
            for kind in LaneFailureKind}
        self.lane_retries = m.counter("supervise.lane_retries",
                                      deterministic=False)
        self.lane_rescues = m.counter("supervise.lane_rescues",
                                      deterministic=False)
        self.pool_rebuilds = m.counter("supervise.pool_rebuilds",
                                       deterministic=False)
        self.slow_lanes = m.counter("supervise.slow_lanes",
                                    deterministic=False)
        self.degraded_epochs = m.counter("supervise.degraded_epochs",
                                         deterministic=False)
        self.supervise_backoff_ms = m.histogram(
            "supervise.backoff_ms", MS_BUCKETS, deterministic=False)
        self.supervise_attempts = m.histogram(
            "supervise.attempts_per_lane", (1, 2, 3, 4, 6, 8),
            deterministic=False)
        self.breaker_trips = m.counter("supervise.breaker.trips",
                                       deterministic=False)
        self.breaker_probes = m.counter("supervise.breaker.probes",
                                        deterministic=False)
        self.breaker_recoveries = m.counter(
            "supervise.breaker.recoveries", deterministic=False)
        # 0 = closed, 1 = half-open, 2 = open (supervise.BREAKER_GAUGE).
        self.breaker_state = {
            strategy: m.gauge(f"supervise.breaker.{strategy}_state",
                              deterministic=False)
            for strategy in ("process", "thread")}
        self.quarantine_size = m.gauge("supervise.quarantine.size",
                                       deterministic=False)
        self.quarantine_additions = m.counter(
            "supervise.quarantine.additions", deterministic=False)
        self.fallback_dropped = m.gauge("net.executor.fallback_dropped",
                                        deterministic=False)
        # Resident shard workers (repro.chain.resident) and epoch
        # pipelining: installs/syncs respond to worker lifecycle and
        # wall-clock overlap, so every instrument is non-deterministic.
        self.resident_installs = m.counter("lane.resident.installs",
                                           deterministic=False)
        self.resident_reinstalls = m.counter("lane.resident.reinstalls",
                                             deterministic=False)
        self.resident_sync_deltas = m.counter("lane.resident.sync_deltas",
                                              deterministic=False)
        self.resident_sync_pushes = m.counter("lane.resident.sync_pushes",
                                              deterministic=False)
        self.resident_install_bytes = m.counter(
            "lane.resident.install_bytes", deterministic=False)
        self.resident_sync_bytes = m.counter("lane.resident.sync_bytes",
                                             deterministic=False)
        self.resident_stale = m.counter("lane.resident.stale",
                                        deterministic=False)
        self.pipeline_overlap_ns = m.histogram(
            "pipeline.overlap_ns", NS_BUCKETS, deterministic=False)
        self.pipeline_commit_deferrals = m.counter(
            "pipeline.commit_deferrals", deterministic=False)
        # Speculative intra-shard scheduling (repro.chain.speculate):
        # window sizes, conflicts and aborts depend on queue shapes
        # and the retry history, which the serial baseline never has —
        # every instrument is non-deterministic by design (the
        # deterministic telemetry subset stays byte-identical with
        # speculation on or off; tests/test_speculative_differential
        # is the oracle).
        self.spec_batches = m.counter("spec.batches",
                                      deterministic=False)
        self.spec_attempts = m.counter("spec.attempts",
                                       deterministic=False)
        self.spec_commits = m.counter("spec.commits",
                                      deterministic=False)
        self.spec_conflicts = m.counter("spec.conflicts",
                                        deterministic=False)
        self.spec_aborts = m.counter("spec.aborts",
                                     deterministic=False)
        self.spec_retries = m.counter("spec.retries",
                                      deterministic=False)
        self.spec_serial_fallbacks = m.counter("spec.serial_fallbacks",
                                               deterministic=False)
        self.spec_rescues = m.counter("spec.rescues",
                                      deterministic=False)
        self.spec_batch_size = m.histogram(
            "spec.batch_size", (1, 2, 4, 8, 16, 32),
            deterministic=False)
        self.spec_rollback_ns = m.histogram(
            "spec.rollback_ns", NS_BUCKETS, deterministic=False)
        # Out-of-core state backend (repro.scilla.backend): fault,
        # eviction and writeback counts follow cache-residency history
        # (executor scheduling, payload shapes, prior epochs), and the
        # ns totals follow the disk — all non-deterministic by design,
        # so the deterministic-telemetry differential contract is
        # untouched by paging (docs/STATE.md).
        self.backend_faults = m.counter("state.backend.faults",
                                        deterministic=False)
        self.backend_evictions = m.counter("state.backend.evictions",
                                           deterministic=False)
        self.backend_writebacks = m.counter("state.backend.writebacks",
                                            deterministic=False)
        self.backend_prefetch_requested = m.counter(
            "state.backend.prefetch.requested", deterministic=False)
        self.backend_prefetch_hits = m.counter(
            "state.backend.prefetch.hits", deterministic=False)
        self.backend_read_ns = m.counter("state.backend.page_read_ns",
                                         deterministic=False)
        self.backend_write_ns = m.counter("state.backend.page_write_ns",
                                          deterministic=False)


@dataclass
class _EpochAttempt:
    """Everything one attempt at an epoch produced (pre-finalisation)."""

    stats: EpochStats
    microblocks: list[MicroBlock]
    ds_block: MicroBlock
    merged_locations: int
    shard_exec_times: list[float]
    deferred: list[tuple[int, Transaction]]
    newly_faulty: dict[int, str]
    rejected_deltas: int


class Network:
    """A sharded blockchain with optional CoSplit-aware dispatch."""

    def __init__(self, n_shards: int, shard_size: int = 5,
                 ds_size: int = 10, use_signatures: bool = True,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 strict_nonces: bool = False,
                 overflow_guard: bool = False,
                 carry_backlog: bool = False,
                 fault_plan: FaultPlan | None = None,
                 max_retries: int = 16,
                 retry_backoff: float = 1.0,
                 executor: str | None = None,
                 lane_workers: int | None = None,
                 data_dir: str | None = None,
                 fsync: str = "commit",
                 snapshot_every: int = 8,
                 keep_snapshots: int = 3,
                 crash_at_barrier: int | None = None,
                 crash_at_append: int | None = None,
                 slice_payloads: bool | None = None,
                 lane_deadline_s: float | None = None,
                 supervise: SuperviseConfig | None = None,
                 resident: bool | None = None,
                 pipeline: bool | None = None,
                 speculate: bool | None = None,
                 state_backend=None,
                 clock=None,
                 metrics=None,
                 tracer=None):
        self.n_shards = n_shards
        self.shard_size = shard_size
        self.ds_size = ds_size
        self.use_signatures = use_signatures
        self.cost = cost_model
        self.overflow_guard = overflow_guard
        # Footprint-sliced lane payloads (repro.chain.lanes): ship only
        # the state components the dispatched transitions' signatures
        # name.  A runtime choice like the executor strategy — results
        # are byte-identical either way (tests/test_slicing_differential
        # is the oracle) — so it is not part of the durable config.
        if slice_payloads is None:
            slice_payloads = \
                os.environ.get("REPRO_SLICE_LANES", "1") != "0"
        self.slice_payloads = slice_payloads
        # Network-wide undo journal: every write to a globally-visible
        # contract state records its reversal here, making checkpoints
        # O(1) marks (repro.chain.recovery).
        self.journal = StateJournal()
        self._cow_copies_seen = scilla_values.COW_COPIES
        self.dispatcher = Dispatcher(n_shards, use_signatures)
        self.accounts: dict[str, Account] = {}
        self.contracts: dict[str, DeployedContract] = {}
        self.nonces = NonceTracker(strict=strict_nonces)
        self.epoch = 0
        self.blocks: list[FinalBlock] = []
        # Opt-in mempool: transactions deferred by a lane's gas limit
        # are retried in later epochs instead of being dropped, with
        # per-transaction backoff (retry_backoff ** retries epochs,
        # rounded) and a dead-letter list after max_retries.
        self.carry_backlog = carry_backlog
        self.backlog: list[BacklogEntry] = []
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.dead_letter: list[Transaction] = []
        # Service mode (repro.chain.service): the attached admission
        # mempool, if any — snapshots embed its pending entries so
        # resume restores the queue.  ``restored_mempool`` collects
        # pending entries recovered from a snapshot + WAL replay
        # (tx_id -> serialized PoolEntry, insertion-ordered); a
        # ServiceLoop adopting this network drains it.
        self.mempool = None
        self.restored_mempool: dict[int, dict] = {}
        # Modeled seconds the service loop spent on ticks that
        # processed no epoch (idle or stalled), per WAL tag — charged
        # to average_tps so partial service batches cannot inflate it.
        self.idle_seconds: dict[str, float] = {}
        # Optional deterministic fault injection (repro.chain.faults).
        self.injector = FaultInjector(fault_plan) if fault_plan else None
        # Shard-lane execution strategy (see EXECUTOR_STRATEGIES).
        if executor is None:
            executor = os.environ.get("REPRO_EXECUTOR", "serial")
        if executor not in EXECUTOR_STRATEGIES:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of "
                f"{EXECUTOR_STRATEGIES}")
        self.executor = executor
        self.lane_workers = lane_workers
        # Resident shard workers (repro.chain.resident): long-lived
        # per-lane worker replicas holding installed shard state, fed
        # only transactions + merge-delta syncs per epoch.  Like the
        # executor and slicing, a pure runtime choice — results are
        # byte-identical either way (tests/test_resident_differential
        # is the oracle) — defaulting on via REPRO_RESIDENT_LANES.
        if resident is None:
            resident = os.environ.get("REPRO_RESIDENT_LANES", "1") != "0"
        self.resident = resident
        # Epoch pipelining (opt-in via REPRO_PIPELINE): the commit
        # record's fsync is deferred into the next epoch's input
        # barrier, overlapping commit durability with dispatch.  Crash
        # safety is unchanged — inputs are still fsynced before
        # execution, and a lost trailing commit record only skips the
        # replay digest check for that epoch, never loses inputs.
        if pipeline is None:
            pipeline = os.environ.get("REPRO_PIPELINE", "0") == "1"
        self.pipeline = pipeline
        # Speculative intra-shard scheduling (repro.chain.speculate,
        # opt-in via REPRO_SPECULATE): footprint lock sets, sandboxed
        # optimistic execution, in-order commit with exact conflict
        # detection, bounded retries, strict-serial fallback.  A pure
        # runtime choice — results are serial-equivalent by
        # construction (tests/test_speculative_differential.py is the
        # oracle) — so it is not part of the durable config.
        if speculate is None:
            speculate = os.environ.get("REPRO_SPECULATE", "0") == "1"
        self.speculate = speculate
        self.spec_batch = _env_int("REPRO_SPEC_BATCH", 8)
        self.spec_retries = _env_int("REPRO_SPEC_RETRIES", 3)
        self.spec_workers = _env_int("REPRO_SPEC_WORKERS", 0)
        # Test hook: the last lane's private speculation journal, for
        # the no-mark-leak property (tests/test_speculate_properties).
        self._spec_last_journal = None
        self._commit_barrier_pending = False
        self._resident_tracker = None
        if resident and self.executor != "serial":
            from .resident import ResidentTracker
            self._resident_tracker = ResidentTracker()
        # Lane supervision (repro.chain.supervise): per-lane deadlines,
        # hung-worker watchdog, retry with backoff, and the executor
        # circuit-breaker ladder.  The deadline defaults to the cost
        # model's consensus timeout — the same bound after which the
        # protocol declares a MicroBlock missing — with the
        # REPRO_LANE_DEADLINE env var as a runtime override.  Like the
        # executor itself this is a runtime choice, not durable config.
        if lane_deadline_s is None:
            env = os.environ.get("REPRO_LANE_DEADLINE", "")
            try:
                lane_deadline_s = float(env) if env else None
            except ValueError:
                lane_deadline_s = None
        if supervise is None:
            supervise = SuperviseConfig(
                deadline_s=(lane_deadline_s if lane_deadline_s is not None
                            else cost_model.microblock_timeout_s))
        elif lane_deadline_s is not None:
            supervise = dc_replace(supervise,
                                   deadline_s=lane_deadline_s)
        self.supervisor = LaneSupervisor(supervise, clock=clock)
        # Observability (repro.obs).  Off by default: the null registry
        # and tracer answer every record with an empty call, so the
        # simulator's hot paths stay uninstrumented-cheap.
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._meters = _NetworkMeters(self.metrics)
        # (lane, source-hash) -> (module, interpreter), reused across
        # epochs by the thread executor so each lane keeps a private
        # interpreter (run_transition installs a per-call gas hook).
        self._runtime_cache: dict = {}
        # Epochs where a parallel executor was requested but the epoch
        # ran serially (strict nonces, cross-lane nonce collision,
        # fewer than two runnable lanes, or a pool failure).
        self.executor_fallbacks = 0
        # One detail entry per pool failure / supervision event, so a
        # silent serial fallback stays observable after the fact.
        # Bounded: appends past capacity drop the oldest entry and
        # count it (the net.executor.fallback_dropped gauge).
        self.executor_fallback_details: BoundedLog = BoundedLog()
        # How many epochs committed under each caller-supplied WAL tag
        # (the durable harness uses this to fast-forward generators).
        self.epoch_tags: dict[str, int] = {}
        # Free-form durable annotations (repro.eval.chaos marks setup
        # completion here); replicated into snapshots and the WAL.
        self.wal_notes: list = []
        # Durability (repro.chain.wal / repro.chain.store).  Off by
        # default: with data_dir=None nothing below ever touches disk.
        self.wal: WriteAheadLog | None = None
        self.store = None
        self.snapshot_every = snapshot_every
        self._replaying = False
        self._commits_since_snapshot = 0
        if data_dir is not None:
            from .store import SnapshotStore
            wal = WriteAheadLog(data_dir, fsync=fsync,
                                crash_at_barrier=crash_at_barrier,
                                crash_at_append=crash_at_append)
            store = SnapshotStore(data_dir, keep=keep_snapshots)
            if wal.recovered or store.paths():
                wal.close()
                raise WALError(
                    f"{data_dir} already holds a log or snapshots; "
                    f"use Network.resume to continue it")
            self.wal = wal
            self.store = store
            self._wal_append("init", self._config_obj(), barrier=True)
        # Out-of-core state (repro.scilla.backend): page cold map
        # entries to a pluggable row store, faulting them back on
        # demand.  Like the executor strategy a pure runtime choice —
        # results are byte-identical with or without a backend (the
        # slicing/resident/speculative differentials are the oracle) —
        # defaulting off, opt-in via REPRO_STATE_BACKEND.  Created
        # after the durability attach so a WALError on a reused
        # data_dir never clobbers an existing backend file.
        self.state_backend = resolve_backend(state_backend, data_dir)
        self._backend_stats_seen = (
            self.state_backend.stats.snapshot()
            if self.state_backend is not None else None)

    # -- setup ----------------------------------------------------------------

    def create_account(self, address: str, balance: int = 10**12) -> Account:
        self._wal_append("account", {"address": address,
                                     "balance": balance})
        return self._create_account(address, balance)

    def _create_account(self, address: str, balance: int) -> Account:
        address = _pad(address)
        account = Account(address, balance)
        account.split_across(self.n_shards, self.dispatcher.home_shard(address))
        self.accounts[address] = account
        if self._resident_tracker is not None:
            self._resident_tracker.touch_account(address)
        return account

    def _account(self, address: str) -> Account:
        address = _pad(address)
        if address not in self.accounts:
            # Lazily-created zero-balance accounts are a deterministic
            # consequence of execution; they are not WAL inputs.
            return self._create_account(address, balance=0)
        if self._resident_tracker is not None:
            # Every account mutation goes through here (apply_effects,
            # serial lanes, DS lane, payouts), so recording the handout
            # over-approximates the epoch's touched-account set.
            self._resident_tracker.touch_account(address)
        return self.accounts[address]

    def deploy(self, source: str, address: str,
               params: dict[str, Value],
               sharded_transitions: tuple[str, ...] | None = None,
               weak_reads="auto", balance: int = 0,
               allow_commutativity: bool = True,
               proposed_signature: ShardingSignature | None = None
               ) -> DeployedContract:
        """Deploy a contract, running the miner-side pipeline.

        ``sharded_transitions`` is the developer's selection; ``None``
        deploys without a sharding signature (the baseline mode).
        ``proposed_signature`` is the signature submitted alongside the
        contract (Sec. 4.3): miners re-derive it from the source and
        reject the deployment on any mismatch.
        """
        self._wal_append("deploy", {
            "source": source, "address": address,
            "params": {k: value_to_json(v) for k, v in params.items()},
            "sharded_transitions": (list(sharded_transitions)
                                    if sharded_transitions is not None
                                    else None),
            "weak_reads": (weak_reads if isinstance(weak_reads, str)
                           else sorted(weak_reads)),
            "balance": balance,
            "allow_commutativity": allow_commutativity,
            "proposed_signature": (signature_to_obj(proposed_signature)
                                   if proposed_signature is not None
                                   else None),
        }, barrier=True)
        address = _pad(address)
        # Content-addressed: redeployments of an already-analysed
        # source (and miner-side validations) skip the pipeline.  The
        # hit/miss delta is attributed to this network's own telemetry
        # (deploys always run on the coordinating thread, so the delta
        # is this call's).
        from ..core.cache import GLOBAL_CACHE
        meters = self._meters
        meters.deploys.inc()
        hits0, misses0 = GLOBAL_CACHE.stats.hits, GLOBAL_CACHE.stats.misses
        t0 = time.perf_counter_ns() if self.metrics.enabled else 0
        with self.tracer.span(f"deploy {address[:10]}"):
            result = run_pipeline_cached(source, address)
        if self.metrics.enabled:
            meters.deploy_ns.observe(time.perf_counter_ns() - t0)
        meters.deploy_cache_hits.inc(GLOBAL_CACHE.stats.hits - hits0)
        meters.deploy_cache_misses.inc(GLOBAL_CACHE.stats.misses - misses0)
        interpreter = Interpreter(result.module)
        state = interpreter.deploy(address, params, balance)
        signature = None
        if proposed_signature is not None and self.use_signatures:
            from ..core.signature import signatures_equal
            recomputed = result.signature(
                tuple(sorted(proposed_signature.selected)),
                weak_reads, allow_commutativity)
            if not signatures_equal(recomputed, proposed_signature):
                raise ValueError(
                    "proposed sharding signature failed miner validation")
            signature = recomputed
        elif sharded_transitions is not None and self.use_signatures:
            signature = result.signature(tuple(sorted(sharded_transitions)),
                                         weak_reads, allow_commutativity)
        state.journal = self.journal
        self._adopt_state(state)
        footprints = None
        if signature is not None:
            from .lanes import transition_footprints
            footprints = transition_footprints(result.summaries)
        deployed = DeployedContract(address, result.module, interpreter,
                                    state, signature, source, footprints)
        self.contracts[address] = deployed
        if self._resident_tracker is not None:
            # No sync can express a new contract: resident replicas
            # reinstall from scratch at the next dispatch.
            self._resident_tracker.mark_structure_change()
        self.dispatcher.register_contract(DeployedSignature(
            address, signature, dict(state.immutables)))
        return deployed

    # -- out-of-core state (repro.scilla.backend) -------------------------------

    def _adopt_state(self, state: ContractState) -> None:
        """Move a freshly built (never-forked) state's top-level map
        fields into the paged backend.  No-op without a backend; maps
        that already page, or that are CoW-shared, are left alone."""
        backend = self.state_backend
        if backend is None:
            return
        for value in state.fields.values():
            if (isinstance(value, MapVal) and not value._cow
                    and isinstance(value.entries, dict)):
                value.entries = PagedDict.adopt(backend, value.entries)

    def _flush_backend(self) -> None:
        """Write dirty overlay rows back and trim resident sets.

        Called only at epoch commit with an empty journal: with no
        retained undo entry referencing any paged state, no rollback
        can cross the writeback, so overlay and backend can never
        disagree about what a restore should produce."""
        for contract in self.contracts.values():
            for value in contract.state.fields.values():
                entries = getattr(value, "entries", None)
                if isinstance(entries, PagedDict):
                    entries.flush()

    def _drain_backend_stats(self) -> None:
        backend = self.state_backend
        if backend is None:
            return
        now = backend.stats.snapshot()
        seen = self._backend_stats_seen
        m = self._meters
        m.backend_faults.inc(now[0] - seen[0])
        m.backend_evictions.inc(now[1] - seen[1])
        m.backend_writebacks.inc(now[2] - seen[2])
        m.backend_prefetch_requested.inc(now[3] - seen[3])
        m.backend_prefetch_hits.inc(now[4] - seen[4])
        m.backend_read_ns.inc(now[5] - seen[5])
        m.backend_write_ns.inc(now[6] - seen[6])
        self._backend_stats_seen = now

    # -- durability (WAL + snapshots + resume) -----------------------------------

    def _wal_append(self, type: str, data, barrier: bool = False) -> None:
        if self.wal is None or self._replaying:
            return
        meters = self._meters
        if self.metrics.enabled:
            t0 = time.perf_counter_ns()
            self.wal.append(type, data)
            meters.wal_append_ns.observe(time.perf_counter_ns() - t0)
            if barrier:
                t1 = time.perf_counter_ns()
                self.wal.barrier()
                meters.wal_fsync_ns.observe(time.perf_counter_ns() - t1)
        else:
            self.wal.append(type, data)
            if barrier:
                self.wal.barrier()
        meters.wal_appends.inc()
        if barrier:
            meters.wal_barriers.inc()
            # A WAL barrier fsyncs every earlier append, including a
            # pipelined commit record whose own fsync was deferred.
            self._commit_barrier_pending = False

    def wal_note(self, data) -> None:
        """Record a durable, application-level annotation (replayed on
        resume and carried through snapshots)."""
        self.wal_notes.append(data)
        self._wal_append("note", data, barrier=True)

    def snapshot(self) -> None:
        """Persist a durable snapshot now, rotate the WAL, and drop
        segments and snapshots the retention policy no longer needs."""
        if self.wal is None or self.store is None:
            return
        if self._commit_barrier_pending:
            # A pipelined commit record is still unflushed; the
            # snapshot below must not claim durability past it.
            self.wal.barrier()
            self._commit_barrier_pending = False
        from .store import snapshot_network
        backend_obj = None
        if self.state_backend is not None and self.state_backend.external:
            # Sidecar first: the snapshot JSON names the sidecar file
            # and pins its digest, so a torn sidecar write can never be
            # adopted (resume verifies before trusting any row).
            backend_obj = self.store.save_backend(
                self.state_backend, epoch=self.epoch,
                wal_seq=self.wal.last_seq)
        obj = snapshot_network(self, wal_seq=self.wal.last_seq,
                               backend_obj=backend_obj)
        self.store.save(obj)
        self.wal.rotate()
        self.wal.compact(keep_from_seq=obj["wal_seq"] + 1)
        self.store.compact()
        self._commits_since_snapshot = 0

    def close(self) -> None:
        if self.wal is not None:
            if self._commit_barrier_pending:
                self._commit_barrier_pending = False
                self.wal.barrier()
            self.wal.close()

    def _config_obj(self):
        """The construction-time configuration, as logged in the WAL
        init record and embedded in snapshots.  Executor strategy and
        worker count are runtime choices, not configuration — resume
        may pick different ones without affecting replay."""
        return {
            "n_shards": self.n_shards,
            "shard_size": self.shard_size,
            "ds_size": self.ds_size,
            "use_signatures": self.use_signatures,
            "cost_model": asdict(self.cost),
            "strict_nonces": self.nonces.strict,
            "overflow_guard": self.overflow_guard,
            "carry_backlog": self.carry_backlog,
            "fault_plan": (self.injector.plan.to_obj()
                           if self.injector is not None else None),
            "max_retries": self.max_retries,
            "retry_backoff": self.retry_backoff,
        }

    @classmethod
    def _from_config(cls, config, executor: str | None = None,
                     lane_workers: int | None = None,
                     state_backend=None,
                     metrics=None, tracer=None) -> "Network":
        return cls(
            state_backend=state_backend,
            n_shards=config["n_shards"],
            shard_size=config["shard_size"],
            ds_size=config["ds_size"],
            use_signatures=config["use_signatures"],
            cost_model=CostModel(**config["cost_model"]),
            strict_nonces=config["strict_nonces"],
            overflow_guard=config["overflow_guard"],
            carry_backlog=config["carry_backlog"],
            fault_plan=(FaultPlan.from_obj(config["fault_plan"])
                        if config["fault_plan"] is not None else None),
            max_retries=config["max_retries"],
            retry_backoff=config["retry_backoff"],
            executor=executor,
            lane_workers=lane_workers,
            metrics=metrics,
            tracer=tracer,
        )

    @classmethod
    def resume(cls, data_dir: str, executor: str | None = None,
               lane_workers: int | None = None, fsync: str = "commit",
               snapshot_every: int = 8, keep_snapshots: int = 3,
               crash_at_barrier: int | None = None,
               crash_at_append: int | None = None,
               metrics=None, tracer=None) -> "Network":
        """Recover a network from ``data_dir`` after a crash or clean
        shutdown.

        Opens the WAL (validating every record and physically
        truncating a torn tail), loads the newest snapshot whose digest
        verifies, deterministically re-executes the logged records past
        it, and re-attaches durability so the returned network keeps
        logging where the dead process stopped.
        """
        from .store import SnapshotStore, network_from_snapshot
        wal = WriteAheadLog(data_dir, fsync=fsync,
                            crash_at_barrier=crash_at_barrier,
                            crash_at_append=crash_at_append)
        try:
            store = SnapshotStore(data_dir, keep=keep_snapshots)
            snap = store.load_newest()
            # The live backend file is never trusted across a crash
            # (its pragmas skip fsync): restore_backend rebuilds it
            # from the snapshot's digest-verified sidecar, or fresh
            # when the snapshot predates (or never had) a backend —
            # replay then repopulates the rows deterministically.
            backend = store.restore_backend(snap, data_dir)
            if snap is not None:
                net = network_from_snapshot(snap, executor=executor,
                                            lane_workers=lane_workers,
                                            state_backend=backend,
                                            metrics=metrics,
                                            tracer=tracer)
                start_seq = snap["wal_seq"]
            else:
                if not wal.recovered or wal.recovered[0].type != "init":
                    raise WALError(
                        f"nothing to resume in {data_dir}: no valid "
                        f"snapshot and no init record")
                net = cls._from_config(wal.recovered[0].data,
                                       executor=executor,
                                       lane_workers=lane_workers,
                                       state_backend=backend,
                                       metrics=metrics,
                                       tracer=tracer)
                start_seq = wal.recovered[0].seq
            net._replaying = True
            try:
                for record in wal.recovered:
                    if record.seq > start_seq:
                        net._replay_record(record)
            finally:
                net._replaying = False
        except BaseException:
            wal.close()
            raise
        net.wal = wal
        net.store = store
        net.snapshot_every = snapshot_every
        return net

    def _replay_record(self, record) -> None:
        data = record.data
        if record.type == "account":
            self._create_account(data["address"], data["balance"])
        elif record.type == "deploy":
            weak_reads = data["weak_reads"]
            self.deploy(
                data["source"], data["address"],
                params={k: value_from_json(v)
                        for k, v in data["params"].items()},
                sharded_transitions=(
                    tuple(data["sharded_transitions"])
                    if data["sharded_transitions"] is not None else None),
                weak_reads=(weak_reads if isinstance(weak_reads, str)
                            else frozenset(weak_reads)),
                balance=data["balance"],
                allow_commutativity=data["allow_commutativity"],
                proposed_signature=(
                    signature_from_obj(data["proposed_signature"])
                    if data["proposed_signature"] is not None else None))
        elif record.type == "epoch":
            if data["epoch"] != self.epoch + 1:
                raise WALError(
                    f"replay out of step: log record {record.seq} is "
                    f"epoch {data['epoch']} but the network is at "
                    f"epoch {self.epoch}")
            self.process_epoch(
                [transaction_from_obj(tx) for tx in data["txns"]],
                unlimited=data["unlimited"], wal_tag=data["tag"])
            # Epoch inputs drained from the restored service pool are
            # no longer pending (their outcomes re-derive on replay:
            # receipts from the epoch itself, deferrals via
            # ``backlog``, which the adopting ServiceLoop re-pulls).
            if self.restored_mempool:
                for tx in data["txns"]:
                    self.restored_mempool.pop(tx["id"], None)
        elif record.type == "commit":
            digest = fingerprint_digest(self)
            if digest != data["digest"]:
                raise WALError(
                    f"replay diverged at epoch {data['epoch']}: "
                    f"recomputed fingerprint {digest[:12]}… does not "
                    f"match the logged commit {data['digest'][:12]}…")
        elif record.type == "note":
            self.wal_notes.append(data)
        elif record.type == "svc-admit":
            # Service-mode admissions journaled before execution; an
            # entry stays pending until an epoch drains it or a
            # svc-terminal record retires it.
            for entry in data["entries"]:
                self.restored_mempool[entry["tx"]["id"]] = entry
        elif record.type == "svc-terminal":
            for tx_id in data["ids"]:
                self.restored_mempool.pop(tx_id, None)
        elif record.type == "init":
            raise WALError(
                f"unexpected init record at sequence {record.seq}")
        else:
            raise WALError(f"unknown WAL record type {record.type!r}")

    # -- epoch processing --------------------------------------------------------

    def process_epoch(self, txns: list[Transaction],
                      unlimited: bool = False,
                      wal_tag: str = "epoch") -> FinalBlock:
        """Process one epoch; ``unlimited`` lifts the per-lane gas
        limits (used for setup epochs that must commit everything).
        Wraps :meth:`_process_epoch` in the ``epoch`` root span and the
        ``net.epoch_ns`` wall-time histogram.

        An epoch only commits as a whole (the FinalBlock is the commit
        point).  If the DS committee discovers a faulty lane mid-epoch
        — a MicroBlock missing past the consensus timeout, or a
        StateDelta that fails footprint validation — it rolls the
        attempt back to the epoch-start checkpoint, excludes the lane,
        and retries; the excluded lane's queue is re-executed on the DS
        lane against the merged state (view change).

        Under durability (``data_dir``) the submitted transactions are
        logged and fsynced *before* execution, so a crash at any later
        point replays this epoch from its durable inputs; ``wal_tag``
        labels the epoch in the log (counted in ``epoch_tags``).
        """
        if not (self.metrics.enabled or self.tracer.enabled):
            return self._process_epoch(txns, unlimited, wal_tag)
        t0 = time.perf_counter_ns()
        with self.tracer.span(f"epoch {self.epoch + 1}"):
            block = self._process_epoch(txns, unlimited, wal_tag)
        self._meters.epoch_ns.observe(time.perf_counter_ns() - t0)
        return block

    def _process_epoch(self, txns: list[Transaction], unlimited: bool,
                       wal_tag: str) -> FinalBlock:
        # The WAL barrier here is the durability point of the epoch:
        # once it returns, the epoch's inputs survive any crash.
        self._wal_append("epoch", {
            "epoch": self.epoch + 1, "unlimited": unlimited,
            "tag": wal_tag,
            "txns": [transaction_to_obj(tx) for tx in txns],
        }, barrier=True)
        self.epoch += 1
        shard_limit = 10**15 if unlimited else self.cost.shard_gas_limit
        ds_limit = 10**15 if unlimited else self.cost.ds_gas_limit
        fault_log: list[str] = []

        incoming = list(txns)
        if self.injector is not None:
            incoming = self.injector.churn_mempool(self.epoch, incoming,
                                                   fault_log)
        retries_of: dict[int, int] = {}
        carried_in = 0
        if self.carry_backlog and self.backlog:
            due = [e for e in self.backlog if e.not_before <= self.epoch]
            if due:
                self.backlog = [e for e in self.backlog
                                if e.not_before > self.epoch]
                retries_of = {e.tx.tx_id: e.retries for e in due}
                incoming = [e.tx for e in due] + incoming
                carried_in = len(due)

        checkpoint = NetworkCheckpoint.take(self)
        try:
            excluded: dict[int, str] = {}
            if self.injector is not None:
                for shard in self.injector.crashed_shards(self.epoch):
                    excluded[shard] = "crash"
                    fault_log.append(f"epoch {self.epoch}: shard {shard} "
                                     f"crashed before producing a "
                                     f"MicroBlock")

            attempt = 0
            rejected_total = 0
            while True:
                attempt += 1
                outcome = self._attempt_epoch(incoming, excluded,
                                              shard_limit, ds_limit,
                                              fault_log)
                rejected_total += outcome.rejected_deltas
                if not outcome.newly_faulty:
                    break
                if attempt > self.n_shards + 1:  # cannot happen: every
                    raise RuntimeError(          # retry excludes ≥1 lane
                        "view-change loop failed to converge")
                excluded.update(outcome.newly_faulty)
                checkpoint.restore(self)
                fault_log.append(
                    f"epoch {self.epoch}: view change — retrying without "
                    f"lane(s) {sorted(outcome.newly_faulty)}")
        finally:
            # The epoch is the commit point: nothing restores to this
            # checkpoint afterwards, so its journal entries may go.
            checkpoint.release(self)

        stats = outcome.stats
        stats.view_changes = attempt - 1
        stats.rejected_deltas = rejected_total

        # Account for every deferred transaction exactly once: retry
        # via the mempool (with backoff, up to max_retries), or emit an
        # explicit failure receipt so no transaction silently vanishes.
        mb_by_lane = {mb.shard: mb for mb in outcome.microblocks}
        carried = 0
        for lane, tx in outcome.deferred:
            if self.carry_backlog:
                retries = retries_of.get(tx.tx_id, 0) + 1
                if retries <= self.max_retries:
                    wait = max(1, round(self.retry_backoff
                                        ** (retries - 1)))
                    self.backlog.append(BacklogEntry(
                        tx, retries, self.epoch + wait))
                    carried += 1
                    continue
                self.dead_letter.append(tx)
                stats.dead_lettered += 1
                receipt = Receipt(
                    tx, False, 0, lane,
                    error=f"deferred: {self.max_retries} retries "
                          f"exhausted")
            else:
                receipt = Receipt(tx, False, 0, lane,
                                  error="deferred: epoch gas limit")
            if lane == DS or lane not in mb_by_lane:
                outcome.ds_block.receipts.append(receipt)
            else:
                mb_by_lane[lane].receipts.append(receipt)

        stats.committed = \
            sum(mb.n_committed for mb in outcome.microblocks) + \
            sum(1 for r in outcome.ds_block.receipts if r.success)
        stats.failed = len(incoming) - stats.committed - carried

        # Telemetry is recorded from the *surviving* attempt only —
        # discarded view-change attempts were rolled back (including
        # their lane counters, via NetworkCheckpoint) — so every value
        # here is a pure function of the submitted workload.
        meters = self._meters
        meters.epochs.inc()
        meters.tx_dispatched.inc(stats.dispatched)
        meters.tx_committed.inc(stats.committed)
        meters.tx_failed.inc(stats.failed)
        meters.tx_deferred.inc(stats.deferred)
        meters.tx_carried.inc(carried)
        meters.tx_to_ds.inc(stats.to_ds)
        meters.tx_recovered.inc(stats.recovered)
        meters.tx_reexecuted.inc(stats.reexecuted)
        meters.tx_dead_lettered.inc(stats.dead_lettered)
        meters.view_changes.inc(stats.view_changes)
        meters.rejected_deltas.inc(stats.rejected_deltas)
        meters.merge_deltas.inc(sum(len(mb.deltas)
                                    for mb in outcome.microblocks))
        meters.merge_locations.inc(outcome.merged_locations)
        meters.backlog_size.set(len(self.backlog))
        meters.dead_letter_size.set(len(self.dead_letter))
        meters.fallback_dropped.set(
            getattr(self.executor_fallback_details, "dropped", 0))
        meters.journal_depth.set(self.journal.depth)
        cow_now = scilla_values.COW_COPIES
        meters.cow_copies.inc(cow_now - self._cow_copies_seen)
        self._cow_copies_seen = cow_now
        # Epoch commit is the writeback point for paged state — but
        # only when the journal retains nothing (an outstanding caller
        # checkpoint could still roll contract states back past this
        # epoch, and a writeback must never race such a restore; dirty
        # rows simply stay resident until a safe commit).
        if self.state_backend is not None and self.journal.depth == 0:
            self._flush_backend()
        self._drain_backend_stats()

        stats.offered = len(txns)
        stats.carried_in = carried_in
        block = FinalBlock(
            epoch=self.epoch,
            microblocks=outcome.microblocks,
            ds_receipts=outcome.ds_block.receipts,
            merged_locations=outcome.merged_locations,
            stats=stats,
            fault_log=fault_log,
            excluded_lanes=dict(excluded),
            tag=wal_tag,
        )
        block.epoch_seconds = self.cost.epoch_seconds(
            shard_exec=outcome.shard_exec_times,
            ds_exec=self.cost.exec_seconds(outcome.ds_block.gas_used),
            merged_locations=outcome.merged_locations,
            shard_size=self.shard_size,
            ds_size=self.ds_size,
            n_dispatched=len(incoming),
            with_cosplit=self.use_signatures,
            timeouts=len(excluded),
        )
        self.blocks.append(block)
        self.epoch_tags[wal_tag] = self.epoch_tags.get(wal_tag, 0) + 1
        # The commit record pins the post-epoch fingerprint so replay
        # can detect divergence instead of silently continuing from a
        # wrong state.  Under pipelining its fsync rides the *next*
        # epoch's input barrier (or the next snapshot/close): a crash
        # in the gap loses only this record, and replay re-executes the
        # epoch from its durable inputs — it merely skips one digest
        # check, never state.
        if self.wal is not None and not self._replaying:
            # Only durable networks pay for the digest: _wal_append is
            # a no-op without a WAL, and the fingerprint walk is O(full
            # state) per epoch.
            self._wal_append("commit", {
                "epoch": self.epoch,
                "digest": fingerprint_digest(self),
            }, barrier=not self.pipeline)
            if self.pipeline:
                self._commit_barrier_pending = True
                self._meters.pipeline_commit_deferrals.inc()
        if self._resident_tracker is not None:
            # Push this epoch's merge-deltas to the resident replicas
            # asynchronously — the pipelining overlap: syncs apply in
            # the workers while the coordinator finalises the block and
            # prepares the next epoch.
            self._resident_tracker.commit_epoch(self)
        if self.wal is not None and not self._replaying:
            self._commits_since_snapshot += 1
            if self._commits_since_snapshot >= self.snapshot_every:
                self.snapshot()
        return block

    def _attempt_epoch(self, incoming: list[Transaction],
                       excluded: dict[int, str], shard_limit: int,
                       ds_limit: int,
                       fault_log: list[str]) -> _EpochAttempt:
        """One attempt at the epoch, with the given lanes excluded.

        Returns without merging anything if a new faulty lane is
        discovered — the caller rolls back to the checkpoint and
        retries.  Excluded lanes' queues are appended to the DS queue
        and re-executed there against the merged global state.
        """
        injector = self.injector
        stats = EpochStats(dispatched=len(incoming))
        queues: dict[int, list[Transaction]] = {s: [] for s in
                                                range(self.n_shards)}
        # The DS execution queue keeps the original submission order,
        # interleaving organically DS-routed transactions with the
        # queues of excluded lanes: re-execution must not reorder a
        # sender's transactions across lanes, or relaxed-nonce checks
        # would reject the lower nonces.
        ds_queue: list[Transaction] = []
        recovered: list[Transaction] = []
        with self.tracer.span("dispatch"):
            for tx in incoming:
                decision = self.dispatcher.dispatch(tx)
                if decision.is_ds:
                    ds_queue.append(tx)
                    stats.to_ds += 1
                else:
                    queues[decision.shard].append(tx)
                    stats.per_shard[decision.shard] = \
                        stats.per_shard.get(decision.shard, 0) + 1
                    if decision.shard in excluded:
                        ds_queue.append(tx)
                        recovered.append(tx)

        mb_faults = (injector.microblock_faults(self.epoch)
                     if injector else {})
        delta_faults = (injector.delta_faults(self.epoch)
                        if injector else {})

        # Phase 1: live shards execute in parallel lanes on the
        # epoch-start state.  Under a parallel executor the runnable
        # lanes are executed concurrently in isolation (each against a
        # private snapshot — repro.chain.lanes) and their results
        # absorbed below in shard order, which reproduces the serial
        # interleaving exactly; the serial executor runs each lane
        # inline at its absorption point.
        runnable = [s for s, q in queues.items()
                    if s not in excluded and s not in mb_faults]
        strategy = self._lane_strategy(runnable, queues)
        lane_results: dict[int, LaneResult] = {}
        if strategy != "serial":
            with self.tracer.span("lanes"):
                parallel = run_lanes(self,
                                     [(s, queues[s]) for s in runnable],
                                     shard_limit, strategy)
            if parallel is None:
                self.executor_fallbacks += 1  # pool failure: run serially
                self._meters.executor_fallbacks.inc()
            else:
                lane_results = parallel
                self._meters.parallel_epochs.inc()
        elif self.executor != "serial":
            self.executor_fallbacks += 1
            self._meters.executor_fallbacks.inc()

        microblocks: list[MicroBlock] = []
        shard_exec_times: list[float] = []
        all_deltas: dict[str, list[StateDelta]] = {}
        balance_deltas: dict[str, int] = {}
        deferred: list[tuple[int, Transaction]] = []
        newly_faulty: dict[int, str] = {}
        rejected = 0
        for shard, queue in queues.items():
            if shard in excluded:
                continue
            fault = mb_faults.get(shard)
            if fault is not None:
                newly_faulty[shard] = str(fault)
                fault_log.append(
                    f"epoch {self.epoch}: shard {shard} MicroBlock "
                    f"missing past the consensus timeout ({fault})")
                continue
            lane_result = lane_results.get(shard)
            if lane_result is not None:
                mb = lane_result.microblock
                lane_deltas = lane_result.deltas
                lane_balance = lane_result.balance_deltas
                lane_deferred = lane_result.deferred
            else:
                with self.tracer.span(f"lane {shard}"):
                    try:
                        mb, local_states, touched, lane_deferred = \
                            self._run_lane(shard, queue, shard_limit)
                    except SpeculationError as exc:
                        # The speculative scheduler abandoned the lane
                        # after restoring the pre-lane state — redo it
                        # on the strict serial path (docs/SCHEDULER.md).
                        self._meters.lane_failures[
                            LaneFailureKind.SPECULATION].inc()
                        self.executor_fallback_details.append(
                            f"epoch {self.epoch}: lane {shard} "
                            f"speculation abandoned ({exc}); redone "
                            f"serially")
                        mb, local_states, touched, lane_deferred = \
                            self._run_lane(shard, queue, shard_limit,
                                           speculate=False)
                lane_deltas = []
                lane_balance = {}
                for addr, local in local_states.items():
                    base = self.contracts[addr].state
                    delta = compute_delta(addr, shard, base, local,
                                          touched.get(addr, set()),
                                          self.contracts[addr].joins)
                    if delta.entries:
                        lane_deltas.append(delta)
                    # Native-token balance changes (accepts / payouts)
                    # are additive, so they merge like an IntMerge
                    # component.
                    lane_balance[addr] = local.balance - base.balance
            kind = delta_faults.get(shard)
            if kind is not None and injector is not None:
                injector.tamper_deltas(self.epoch, shard, kind,
                                       lane_deltas, self,
                                       self._delta_validator, fault_log)
            # The DS committee validates every delta against the
            # deployed signature's write footprint before merging.
            violations = [(delta, v) for delta in lane_deltas
                          if (v := self._delta_validator(delta))
                          is not None]
            if violations:
                rejected += len(violations)
                newly_faulty[shard] = "byzantine-delta"
                for _, violation in violations:
                    fault_log.append(f"epoch {self.epoch}: {violation}")
                continue
            if lane_result is not None:
                # An isolated lane's gas charges, credits and nonce
                # commitments land here, in shard order — the same
                # totals the serial loop produced by mutating in place.
                # So does its telemetry: the worker recorded lane.*
                # into a private registry, folded in additively at the
                # exact point the serial loop would have recorded it.
                lane_result.apply_effects(self)
                if lane_result.metrics is not None:
                    self.metrics.merge_snapshot(lane_result.metrics)
            stats.deferred += len(lane_deferred)
            deferred.extend((shard, tx) for tx in lane_deferred)
            microblocks.append(mb)
            shard_exec_times.append(self.cost.exec_seconds(mb.gas_used))
            for delta in lane_deltas:
                mb.deltas.append(delta)
                all_deltas.setdefault(delta.contract, []).append(delta)
            for addr, bdelta in lane_balance.items():
                balance_deltas[addr] = (balance_deltas.get(addr, 0)
                                        + bdelta)

        if newly_faulty:
            return _EpochAttempt(stats, microblocks,
                                 MicroBlock(shard=DS, epoch=self.epoch),
                                 0, shard_exec_times, deferred,
                                 newly_faulty, rejected)

        # Phase 2: DS merges shard deltas (FSD).
        t_merge = time.perf_counter_ns() if self.metrics.enabled else 0
        merged_locations = 0
        tracker = self._resident_tracker
        with self.tracer.span("merge"):
            for addr, deltas in all_deltas.items():
                contract = self.contracts[addr]
                merged, changed = merge_deltas(contract.state, deltas)
                self._rebind_state(contract, merged)
                merged_locations += changed
                if tracker is not None:
                    # Resident replicas learn exactly these locations
                    # at the post-commit sync.
                    for delta in deltas:
                        tracker.touch_state(
                            addr, (e.key for e in delta.entries))
            for addr, bdelta in balance_deltas.items():
                if bdelta:
                    self.contracts[addr].state.balance += bdelta
                    merged_locations += 1
        if self.metrics.enabled:
            self._meters.merge_ns.observe(time.perf_counter_ns() - t_merge)

        # Phase 3: DS executes the potentially-conflicting transactions
        # directly on the merged global state, plus the queues of every
        # excluded lane (the recovery path of the view change).
        recovered_ids = {tx.tx_id for tx in recovered}
        with self.tracer.span("ds lane"):
            ds_block, _, ds_touched, ds_deferred = self._run_lane(
                DS, ds_queue, ds_limit, use_global_state=True)
        if tracker is not None:
            # The DS lane mutates the merged global state directly;
            # its write set is part of the epoch's sync.
            for addr, keys in ds_touched.items():
                tracker.touch_state(addr, keys)
        stats.deferred += len(ds_deferred)
        deferred.extend((DS, tx) for tx in ds_deferred)
        stats.recovered = len(recovered)
        stats.reexecuted = sum(1 for r in ds_block.receipts
                               if r.tx.tx_id in recovered_ids)
        return _EpochAttempt(stats, microblocks, ds_block,
                             merged_locations, shard_exec_times,
                             deferred, newly_faulty, rejected)

    def _rebind_state(self, contract: DeployedContract,
                      new_state: ContractState) -> None:
        """Swap a contract's globally-visible state (the FSD merge
        produces a fresh fork).  The swap is journaled so a checkpoint
        rollback rebinds the old state, and the new state is attached
        to the journal so later writes keep recording."""
        self.journal.record_rebind(contract, contract.state)
        contract.state = new_state
        new_state.journal = self.journal

    def _delta_validator(self, delta: StateDelta) -> DeltaViolation | None:
        contract = self.contracts.get(delta.contract)
        if contract is None:
            return DeltaViolation(delta.contract, delta.shard, None,
                                  "unknown contract")
        return validate_delta(delta, contract, self.dispatcher)

    def _lane_strategy(self, runnable: list[int],
                       queues: dict[int, list[Transaction]]) -> str:
        """Pick the executor for this epoch's shard phase.

        Lane isolation is sound exactly when every decision a lane
        makes is independent of its siblings.  Two situations break
        that and force the serial loop: strict nonce mode (acceptance
        reads a *global* high-water mark that other lanes advance),
        and the same ``(sender, nonce)`` pair dispatched to two
        different lanes (first-lane-wins replay detection depends on
        execution order).  Both are detected up front, so the choice
        is deterministic and made before any state changes.
        """
        if self.executor == "serial" or len(runnable) < 2:
            return "serial"
        if self.nonces.strict:
            return "serial"
        seen: dict[tuple[str, int], int] = {}
        for shard in runnable:
            for tx in queues[shard]:
                key = (_pad(tx.sender), tx.nonce)
                if seen.setdefault(key, shard) != shard:
                    return "serial"
        return self.executor

    # -- lane execution ------------------------------------------------------------

    def _run_lane(self, lane: int, queue: list[Transaction],
                  gas_limit: int, use_global_state: bool = False,
                  speculate: bool | None = None):
        """Execute a queue sequentially, as one shard (or the DS) does.

        With speculation enabled the lane is handed to the optimistic
        scheduler instead (repro.chain.speculate), which returns the
        same quadruple with serial-equivalent contents.  The DS lane
        (use_global_state) always runs serially: it executes directly
        on merged global state, which the sandbox commit path does not
        model — and it is the designated home of non-commuting work.
        """
        if speculate is None:
            speculate = self.speculate
        if speculate and not use_global_state and len(queue) > 1:
            from .speculate import run_speculative_lane
            return run_speculative_lane(self, lane, queue, gas_limit)
        mb = MicroBlock(shard=lane, epoch=self.epoch)
        local_states: dict[str, ContractState] = {}
        touched: dict[str, set[StateKey]] = {}

        def state_for(addr: str) -> ContractState:
            if use_global_state:
                return self.contracts[addr].state
            if addr not in local_states:
                local_states[addr] = self.contracts[addr].state.fork()
            return local_states[addr]

        meters = self._meters
        t0 = time.perf_counter_ns() if self.metrics.enabled else 0
        deferred: list[Transaction] = []
        for position, tx in enumerate(queue):
            if mb.gas_used >= gas_limit:
                deferred = queue[position:]
                break  # retried next epoch when the mempool is enabled
            receipt = self._execute(tx, lane, state_for, touched)
            mb.receipts.append(receipt)
            mb.gas_used += receipt.gas_used
            meters.lane_tx_executed.inc()
            (meters.lane_tx_ok if receipt.success
             else meters.lane_tx_failed).inc()
            meters.lane_gas.inc(receipt.gas_used)
            meters.lane_gas_per_tx.observe(receipt.gas_used)
        if self.metrics.enabled:
            meters.lane_exec_ns.observe(time.perf_counter_ns() - t0)
        return mb, local_states, touched, deferred

    def _execute(self, tx: Transaction, lane: int, state_for,
                 touched: dict[str, set[StateKey]]) -> Receipt:
        sender = self._account(tx.sender)
        if self._resident_tracker is not None:
            # try_accept moves this sender's nonce record (even a
            # rejection touches the used-set table).
            self._resident_tracker.touch_nonce(_pad(tx.sender))
        if not self.nonces.try_accept(_pad(tx.sender), tx.nonce, lane):
            return Receipt(tx, False, 0, lane, error="bad nonce")

        if not tx.is_contract_call:
            if _pad(tx.to) in self.contracts:
                # Mirrors the dispatcher's "payment to contract"
                # routing: the funds stay with the sender instead of
                # landing in a shadow user account under the contract's
                # address.
                return Receipt(tx, False, PAYMENT_GAS, lane,
                               error="payment to contract address")
            fee = PAYMENT_GAS * tx.gas_price
            if not sender.charge(lane, tx.amount + fee):
                return Receipt(tx, False, PAYMENT_GAS, lane,
                               error="insufficient balance")
            self._account(tx.to).credit(tx.amount, lane)
            return Receipt(tx, True, PAYMENT_GAS, lane)

        contract = self.contracts.get(_pad(tx.to))
        if contract is None:
            return Receipt(tx, False, 0, lane, error="unknown contract")

        chain = _CallChain(self, lane, state_for, tx.gas_limit)
        try:
            chain.invoke(contract, tx.transition or "", tx.args_dict(),
                         caller=_pad(tx.sender), amount=tx.amount,
                         payer_account=sender, depth=0)
        except _ChainFailed as exc:
            chain.rollback()
            sender.charge(lane, chain.gas_used * tx.gas_price)
            return Receipt(tx, False, chain.gas_used, lane,
                           error=str(exc))

        fee = chain.gas_used * tx.gas_price
        if not sender.charge(lane, fee):
            # Gas must be paid even for failed transactions; a sender who
            # cannot pay gets the transaction rejected outright.
            chain.rollback()
            return Receipt(tx, False, chain.gas_used, lane,
                           error="cannot pay gas")

        if self.overflow_guard and lane != DS and \
                not chain.within_overflow_budget():
            chain.rollback()
            return Receipt(tx, False, chain.gas_used, lane,
                           error="overflow guard: rerouted")

        for addr, keys in chain.touched.items():
            touched.setdefault(addr, set()).update(keys)
        return Receipt(tx, True, chain.gas_used, lane,
                       events=chain.events)

    # -- reporting ----------------------------------------------------------------

    def average_tps(self, last_n: int | None = None,
                    tag: str | None = None) -> float:
        """Committed transactions per modeled second.

        ``tag`` restricts the average to epochs committed under that
        WAL tag (e.g. ``"serve"`` for service-mode epochs).  Idle and
        stalled service ticks processed no epoch but still consumed
        consensus time; :meth:`note_idle_seconds` charges them here, so
        a mempool-drained service run's partial batches cannot inflate
        the average over what the wall clock saw.
        """
        blocks = [b for b in self.blocks
                  if tag is None or getattr(b, "tag", None) == tag]
        blocks = blocks[-last_n:] if last_n else blocks
        total = sum(b.n_committed for b in blocks)
        seconds = sum(b.epoch_seconds for b in blocks)
        if last_n is None:
            if tag is None:
                seconds += sum(self.idle_seconds.values())
            else:
                seconds += self.idle_seconds.get(tag, 0.0)
        return total / seconds if seconds else 0.0

    def note_idle_seconds(self, tag: str, seconds: float) -> None:
        """Charge modeled time for a service tick that processed no
        epoch (idle mempool or a stalled consumer)."""
        self.idle_seconds[tag] = self.idle_seconds.get(tag, 0.0) + seconds


# --------------------------------------------------------------------------
# Chained contract calls (atomic, DS-only beyond the first hop).
# --------------------------------------------------------------------------

MAX_CALL_DEPTH = 3


class _ChainFailed(Exception):
    """A call in the chain failed; the whole transaction rolls back."""


class _CallChain:
    """Executes a transaction's (possibly multi-contract) call chain.

    Messages sent to user addresses move native tokens; messages sent
    to *contract* addresses invoke the transition named by the tag —
    but only inside the DS committee (the lookup node's single-contract
    check routes such transactions there, Sec. 4.3).  The entire chain
    is atomic: any failure undoes every state write and balance move.
    """

    def __init__(self, net: "Network", lane: int, state_for,
                 gas_limit: int):
        self.net = net
        self.lane = lane
        self.state_for = state_for
        self.gas_limit = gas_limit
        self.gas_used = 0
        self.events: list = []
        self.touched: dict[str, set[StateKey]] = {}
        # Undo entries, applied in reverse on rollback.
        self._undo: list = []
        self._overflow_results: list[tuple[DeployedContract,
                                           ContractState, object]] = []

    def invoke(self, contract: DeployedContract, transition: str,
               args: dict, caller: str, amount: int,
               payer_account, depth: int) -> None:
        from ..scilla.errors import ExecError
        state = self.state_for(contract.address)
        ctx = TxContext(sender=caller, amount=amount,
                        block_number=self.net.epoch)
        try:
            result = contract.interpreter.run_transition(
                state, transition, args, ctx,
                gas_limit=max(self.gas_limit - self.gas_used, 0))
        except ExecError as exc:
            raise _ChainFailed(str(exc)) from exc
        self.gas_used += result.gas_used
        if not result.success:
            raise _ChainFailed(result.error or "transition failed")

        log = result.write_log
        self._undo.append(("writes", state, log))
        self.events.extend(result.events)
        self.touched.setdefault(contract.address, set()).update(
            log.writes.keys())
        self._overflow_results.append((contract, state, result))

        if result.accepted:
            # The interpreter already credited the contract; that credit
            # must be undone too if the chain later fails.
            self._undo.append(("contract-credit", state, result.accepted))
            # Debit the payer (the user for the first hop, the calling
            # contract afterwards).
            if payer_account is not None:
                if not payer_account.charge(self.lane, result.accepted):
                    raise _ChainFailed("insufficient balance for transfer")
                self._undo.append(("account-debit", payer_account,
                                   result.accepted))
            else:
                caller_state = self.state_for(caller)
                if caller_state.balance < result.accepted:
                    raise _ChainFailed(
                        "insufficient contract balance for transfer")
                caller_state.balance -= result.accepted
                self._undo.append(("contract-debit", caller_state,
                                   result.accepted))
        else:
            # Funds offered but not accepted stay with the payer.
            pass

        for msg in result.messages:
            recipient = _pad(msg.recipient)
            callee = self.net.contracts.get(recipient)
            if callee is not None:
                if self.lane != DS:
                    raise _ChainFailed(
                        "contract-to-contract call outside the DS committee")
                if depth + 1 >= MAX_CALL_DEPTH:
                    raise _ChainFailed("call depth exceeded")
                self.invoke(callee, msg.tag, dict(msg.params),
                            caller=contract.address, amount=msg.amount,
                            payer_account=None, depth=depth + 1)
            elif msg.amount > 0:
                if state.balance < msg.amount:
                    raise _ChainFailed(
                        "insufficient contract balance for payout")
                state.balance -= msg.amount
                account = self.net._account(recipient)
                account.credit(msg.amount, self.lane)
                self._undo.append(("payout", state, account, msg.amount))

    def rollback(self) -> None:
        for entry in reversed(self._undo):
            kind = entry[0]
            if kind == "writes":
                _, state, log = entry
                log.rollback(state)
            elif kind == "account-debit":
                _, account, amount = entry
                account.credit(amount, self.lane)
            elif kind == "contract-debit":
                _, state, amount = entry
                state.balance += amount
            elif kind == "contract-credit":
                _, state, amount = entry
                state.balance -= amount
            elif kind == "payout":
                _, state, account, amount = entry
                state.balance += amount
                account.balance -= amount
                account.shard_portions[self.lane] = \
                    account.shard_portions.get(self.lane, 0) - amount
        self._undo.clear()

    def within_overflow_budget(self) -> bool:
        """Sec. 6's conservative per-shard overflow budget for IntMerge
        components: a transaction may move a component at most
        ``(MAX - v) / N`` away from its epoch-start value ``v``."""
        from ..scilla.values import IntVal
        for contract, state, result in self._overflow_results:
            base = self.net.contracts[contract.address].state
            for key in result.write_log.writes:
                if contract.joins.get(key[0]) is not JoinKind.INT_MERGE:
                    continue
                new = state.read(key)
                old = base.read(key)
                if not isinstance(new, IntVal):
                    continue
                old_v = old.value if isinstance(old, IntVal) else 0
                _, max_v = ty.int_bounds(new.typ)
                budget = (max_v - old_v) // max(self.net.n_shards, 1)
                if abs(new.value - old_v) > budget:
                    return False
        return True
