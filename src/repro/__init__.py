"""Reproduction of "Practical Smart Contract Sharding with Ownership
and Commutativity Analysis" (Pîrlea, Kumar, Sergey — PLDI 2021).

Subpackages:

* :mod:`repro.scilla`    — the Scilla language frontend and interpreter;
* :mod:`repro.core`      — the CoSplit analysis and signature derivation;
* :mod:`repro.chain`     — the sharded blockchain simulator;
* :mod:`repro.contracts` — the 52-contract Scilla corpus;
* :mod:`repro.workloads` — workload generators and the Ethereum trace;
* :mod:`repro.eval`      — regenerators for every table and figure.
"""

__version__ = "1.0.0"
