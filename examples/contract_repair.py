"""Automated contract repair (Sec. 6's future-work feature).

The NFT contract's Approve transition authorises via an owner read
from the contract state and uses it as a map key — the pattern CoSplit
cannot summarise.  This example diagnoses the contract, applies the
compare-and-swap repair, and shows the before/after sharding result.

Run with:  python examples/contract_repair.py
"""

from repro.contracts import CORPUS
from repro.core.repair import diagnose, repair_transition
from repro.core.signature import derive_signature
from repro.core.summary import analyze_module
from repro.core.solver import ShardingSolver
from repro.scilla.parser import parse_module
from repro.scilla.pretty import pp_component


def main() -> None:
    module = parse_module(CORPUS["NonfungibleToken"], "NFT")

    print("=== Diagnosis ===")
    for d in diagnose(module):
        status = "shardable" if d.shardable else "NOT shardable"
        print(f"  {d.transition}: {status}")
        for reason in d.reasons:
            print(f"      {reason}")
        for binder in d.repairable_binders:
            print(f"      repairable state-derived key: {binder}")

    before = ShardingSolver("NFT", analyze_module(module)).report()
    print(f"\nlargest good-enough signature before repair: "
          f"{before.largest_ge_size}")

    repaired, changes = repair_transition(module, "Approve")
    print("\n=== Applied repair ===")
    for change in changes:
        print(f"  {change}")

    print("\n=== Rewritten transition ===")
    print(pp_component(repaired.contract.component("Approve")))

    after = ShardingSolver("NFT", analyze_module(repaired)).report()
    print(f"\nlargest good-enough signature after repair: "
          f"{after.largest_ge_size}")
    sig = derive_signature("NFT", analyze_module(repaired), ("Approve",))
    print("\nApprove's constraints are now satisfiable:")
    print(sig.describe())


if __name__ == "__main__":
    main()
