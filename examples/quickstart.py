"""Quickstart: analyse a contract, derive its sharding signature, and
run it on a sharded network.

This walks the full CoSplit pipeline of the paper on a small token
contract:

1. parse + typecheck + effect analysis (Sec. 3.2–3.4),
2. sharding-signature derivation (Algorithm 3.1),
3. deployment on a simulated sharded chain and parallel execution
   with deterministic delta merging (Sec. 4).

Run with:  python examples/quickstart.py
"""

from repro.chain import Network, call
from repro.core import run_pipeline
from repro.scilla.values import addr, uint

TOKEN = """
scilla_version 0

library QuickToken

let zero = Uint128 0

contract QuickToken (owner: ByStr20)

field balances : Map ByStr20 Uint128 = Emp ByStr20 Uint128
field supply : Uint128 = Uint128 0

transition Mint (to: ByStr20, amount: Uint128)
  is_owner = builtin eq _sender owner;
  match is_owner with
  | False =>
    e = { _exception : "NotOwner" };
    throw e
  | True =>
    bal_opt <- balances[to];
    new_bal = match bal_opt with
              | Some b => builtin add b amount
              | None => amount
              end;
    balances[to] := new_bal;
    s <- supply;
    new_s = builtin add s amount;
    supply := new_s
  end
end

transition Transfer (to: ByStr20, amount: Uint128)
  bal_opt <- balances[_sender];
  bal = match bal_opt with
        | Some b => b
        | None => zero
        end;
  insufficient = builtin lt bal amount;
  match insufficient with
  | True =>
    e = { _exception : "InsufficientFunds" };
    throw e
  | False =>
    new_from = builtin sub bal amount;
    balances[_sender] := new_from;
    to_opt <- balances[to];
    new_to = match to_opt with
             | Some b => builtin add b amount
             | None => amount
             end;
    balances[to] := new_to
  end
end
"""


def main() -> None:
    # --- 1. The deployment pipeline -----------------------------------
    result = run_pipeline(TOKEN, "QuickToken")
    print("=== Transition summaries (Sec. 3.2, cf. Fig. 8) ===")
    for summary in result.summaries.values():
        print(summary)
        print()

    # --- 2. Sharding signature (Algorithm 3.1) ------------------------
    signature = result.signature(("Mint", "Transfer"))
    print("=== Sharding signature ===")
    print(signature.describe())
    print()

    # --- 3. Sharded execution ------------------------------------------
    owner = "0x" + "aa" * 20
    alice, bob, carol = ("0x" + c * 20 for c in ("01", "02", "03"))
    net = Network(n_shards=3)
    for account in (owner, alice, bob, carol):
        net.create_account(account)
    token = "0x" + "70" * 20
    net.deploy(TOKEN, token, {"owner": addr(owner)},
               sharded_transitions=("Mint", "Transfer"))

    block = net.process_epoch([
        call(owner, token, "Mint", {"to": addr(alice), "amount": uint(100)},
             nonce=1),
        call(owner, token, "Mint", {"to": addr(bob), "amount": uint(50)},
             nonce=2),
    ])
    print(f"epoch 1: {block.n_committed} committed, "
          f"{len(block.ds_receipts)} in the DS committee")

    block = net.process_epoch([
        call(alice, token, "Transfer", {"to": addr(carol),
                                        "amount": uint(30)}, nonce=1),
        call(bob, token, "Transfer", {"to": addr(carol),
                                      "amount": uint(20)}, nonce=1),
        # Overdraft: fails and rolls back inside its shard.
        call(carol, token, "Transfer", {"to": addr(alice),
                                        "amount": uint(999)}, nonce=1),
    ])
    receipts = {r.tx.tx_id: r for r in block.all_receipts}
    print(f"epoch 2: {block.n_committed}/3 committed "
          f"(the overdraft fails safely)")

    state = net.contracts[token].state
    print("\n=== Final token state (merged across shards) ===")
    for holder, balance in state.fields["balances"].entries.items():
        print(f"  {holder} -> {balance}")
    print(f"  supply = {state.fields['supply']}")


if __name__ == "__main__":
    main()
