"""A full crowdfunding campaign on the sharded chain.

Exercises the Crowdfunding contract end to end: donations arrive in
parallel across shards (the commutative ``raised`` counter is merged
with IntMerge), the campaign misses its goal, and backers claim their
refunds — whose constraints route them through the DS committee.

Run with:  python examples/crowdfunding_campaign.py
"""

from repro.chain import Network, call
from repro.contracts import CORPUS
from repro.scilla.values import BNumVal, addr, uint

CAMPAIGN = "0x" + "cf" * 20


def main() -> None:
    organiser = "0x" + "0a" * 20
    backers = ["0x" + f"{i:040x}" for i in range(1, 31)]

    net = Network(n_shards=3)
    net.create_account(organiser)
    for backer in backers:
        net.create_account(backer)

    # A campaign with an unreachable goal, closing at block 3.
    net.deploy(CORPUS["Crowdfunding"], CAMPAIGN, {
        "campaign_owner": addr(organiser),
        "goal": uint(10**9),
        "deadline": BNumVal(3),
    }, sharded_transitions=("ClaimBack", "Donate"))
    signature = net.contracts[CAMPAIGN].signature
    print("=== Sharding signature ===")
    print(signature.describe())

    # Epoch 1-2: donations, spread across shards by backer address.
    for epoch in range(2):
        batch = backers[epoch * 15:(epoch + 1) * 15]
        block = net.process_epoch([
            call(b, CAMPAIGN, "Donate", {}, nonce=1, amount=100)
            for b in batch
        ])
        in_shards = block.n_committed - sum(
            1 for r in block.ds_receipts if r.success)
        print(f"epoch {block.epoch}: {block.n_committed} donations "
              f"({in_shards} processed inside shards)")

    state = net.contracts[CAMPAIGN].state
    print(f"raised so far (IntMerge-combined): {state.fields['raised']}")

    # Epoch 3+: deadline passed, goal missed — backers claim refunds.
    block = net.process_epoch([])  # advance past the deadline
    block = net.process_epoch([
        call(b, CAMPAIGN, "ClaimBack", {}, nonce=2)
        for b in backers[:10]
    ])
    refunds = [r for r in block.all_receipts if r.success]
    print(f"epoch {block.epoch}: {len(refunds)} refunds claimed")
    print(f"raised after refunds: "
          f"{net.contracts[CAMPAIGN].state.fields['raised']}")
    remaining = len(net.contracts[CAMPAIGN].state.fields["backers"].entries)
    print(f"backers still recorded: {remaining}")


if __name__ == "__main__":
    main()
