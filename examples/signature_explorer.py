"""Signature explorer: the contract developer's offline workflow.

Fig. 11 of the paper: before deploying, the developer queries the
sharding solver with candidate transition selections and weak-read
choices, and inspects the resulting constraints and join operations.
This example explores the FungibleToken contract from the corpus:
every maximal good-enough signature, what each transition's ownership
constraints look like, and what happens when weak reads are refused.

Run with:  python examples/signature_explorer.py  [contract-name]
"""

import sys

from repro.contracts import CORPUS
from repro.core import run_pipeline
from repro.core.signature import StaleReadsRejected, derive_signature


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "FungibleToken"
    result = run_pipeline(CORPUS[name], name)
    solver = result.solver()
    report = solver.report()

    print(f"=== {name}: {report.n_transitions} transitions ===\n")
    print("Shardable on their own (satisfiable singleton signature):")
    for t in solver.shardable_transitions():
        print(f"  • {t}")
    not_shardable = set(result.summaries) - set(solver.shardable_transitions())
    for t in sorted(not_shardable):
        print(f"  ✗ {t} (⊥ — always routed to the DS committee)")

    print(f"\nLargest good-enough signature: {report.largest_ge_size} "
          f"transitions\nMaximal GE signatures: {report.n_maximal}")
    for selection in report.maximal_ge:
        print(f"\n--- maximal selection {selection} ---")
        sig = solver.signature(selection)
        print(sig.describe())

    # What does refusing weak reads cost?  (Sec. 4.2.3)
    print("\n=== Weak reads refused (stale-read gate of Alg. 3.1) ===")
    selection = report.largest_ge
    try:
        derive_signature(name, result.summaries, selection,
                         weak_reads=set())
        print("this selection needs no weak reads")
    except StaleReadsRejected as exc:
        print(f"rejected: needs stale reads of {sorted(exc.needed)}")
        fallback = derive_signature(name, result.summaries, selection,
                                    weak_reads=set(),
                                    allow_commutativity=False)
        print("ownership-only fallback signature (Strategy 1):")
        print(fallback.describe())


if __name__ == "__main__":
    main()
