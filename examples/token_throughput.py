"""Token-throughput comparison: baseline sharding vs CoSplit.

A scaled-down version of the paper's "FT transfer" vs "FT fund"
experiment (Fig. 14): random-to-random ERC20 transfers scale with the
number of shards once the sharding signature routes each sender's
transactions to the shard owning their balance entry, while the
single-source "fund" workload stays pinned to one shard.

Run with:  python examples/token_throughput.py
"""

from repro.eval.throughput import (
    Config, FIG14_COST_MODEL, run_workload,
)
from repro.workloads.generators import FTFund, FTTransfer

CONFIGS = [
    Config("Baseline 3 shards", 3, False),
    Config("CoSplit 3 shards", 3, True),
    Config("CoSplit 5 shards", 5, True),
]


def main() -> None:
    print(f"{'workload':14s} {'configuration':22s} {'TPS':>8s} "
          f"{'committed':>10s} {'via DS':>7s}")
    for workload_cls in (FTFund, FTTransfer):
        for config in CONFIGS:
            workload = workload_cls(n_users=120, txns_per_epoch=300)
            cell = run_workload(workload, config, epochs=3,
                                cost_model=FIG14_COST_MODEL)
            print(f"{cell.workload:14s} {config.label:22s} "
                  f"{cell.tps:>8.1f} {cell.committed:>6d}/{cell.offered}"
                  f" {100 * cell.ds_fraction:>6.1f}%")
    print()
    print("FT transfer gains capacity with each added shard; FT fund is")
    print("owned by a single shard (all transfers share one sender) and")
    print("cannot scale — exactly the Fig. 14 shape.")


if __name__ == "__main__":
    main()
